"""An implementable Ω failure detector driven by observed deliveries.

The paper treats Ω as given, citing linear-message implementations
[22, 24] and stable-election results [1, 16]; its analysis deliberately
excludes election cost because "the same leader may persist for numerous
instances of consensus".  This module provides the implementation those
citations stand for, at the abstraction GIRAF uses:

:class:`HeartbeatOmega` watches which processes' messages actually arrive
(the runner reports each round's delivery matrix through
:meth:`observe`) and trusts the smallest-id process heard within the last
``suspicion_rounds`` rounds.  Properties:

- **Eventual agreement**: once the system stabilizes and some correct
  process's messages reach everyone each round (true under ES/◊LM/◊WLM
  for the leader, and eventually for the min-id correct process under
  any model where it is a source), all processes converge on one leader.
- **Crash detection**: a crashed leader stops being heard and is dropped
  after ``suspicion_rounds`` rounds, after which the next process takes
  over — exercising consensus through leader re-election.
- **Stability**: the output changes only when the current leader goes
  quiet or a smaller-id process reappears, matching the stable-election
  goal of [1, 24].

The detector is *local*: each process's view depends only on its own row
of the delivery matrices, as a real implementation's would.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.giraf.oracle import Oracle
from repro.obs.registry import MetricsRegistry, registry_or_null


class HeartbeatOmega(Oracle):
    """Ω from observed heartbeats: trust the smallest-id recently-heard process."""

    def __init__(
        self,
        n: int,
        suspicion_rounds: int = 3,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if n < 1:
            raise ValueError("n must be positive")
        if suspicion_rounds < 1:
            raise ValueError("suspicion_rounds must be at least 1")
        self.n = n
        self.suspicion_rounds = suspicion_rounds
        # last_heard[dst, src] = last round in which dst heard src.
        self._last_heard = np.zeros((n, n), dtype=int)
        self._metrics = registry_or_null(metrics)
        self._suspicions_raised = self._metrics.counter("omega.suspicions_raised")
        self._suspicions_cleared = self._metrics.counter(
            "omega.suspicions_cleared"
        )
        self._leader_changes = self._metrics.counter("omega.leader_changes")
        # suspected[dst, src]: was src outside dst's window at the last
        # observation?  Round 0 starts with nothing suspected.
        self._suspected = np.zeros((n, n), dtype=bool)
        self._last_output: dict[int, int] = {}

    def observe(self, round_number: int, delivered: np.ndarray) -> None:
        """Feed one round's delivery matrix (``delivered[dst, src]``).

        The lockstep runner calls this at the end of every round; each
        process always "hears" itself.  The freshness map is monotone:
        a repeated or out-of-order observation (replayed matrices, a
        fault-injected runner re-driving a round) can only confirm that a
        process was heard, never roll its last-heard round backwards and
        resurrect suspicion of a live process.
        """
        if delivered.shape != (self.n, self.n):
            raise ValueError("delivery matrix has wrong shape")
        heard = delivered.copy()
        np.fill_diagonal(heard, True)
        np.maximum(
            self._last_heard,
            np.where(heard, round_number, self._last_heard),
            out=self._last_heard,
        )
        suspected = self._last_heard < (round_number - self.suspicion_rounds)
        raised = int(np.count_nonzero(suspected & ~self._suspected))
        cleared = int(np.count_nonzero(~suspected & self._suspected))
        if raised:
            self._suspicions_raised.inc(raised)
        if cleared:
            self._suspicions_cleared.inc(cleared)
        self._suspected = suspected

    def observe_row(
        self, pid: int, round_number: int, heard_row: np.ndarray
    ) -> None:
        """Feed one process's view of one round: ``heard_row[src]`` says
        whether ``pid`` heard ``src`` this round.

        The detector is local — :meth:`query`/:meth:`trusted`/:meth:`alive`
        for ``pid`` read only row ``pid`` of the freshness map — so the
        event-driven path can report each node's round observation the
        moment that node's round ends, instead of waiting to assemble the
        full matrix.  A sequence of per-row observations is exactly
        equivalent to :meth:`observe` of the assembled matrix: same
        freshness map, same suspicion counters (summed per row).
        """
        heard_row = np.asarray(heard_row, dtype=bool)
        if heard_row.shape != (self.n,):
            raise ValueError("delivery row has wrong shape")
        heard = heard_row.copy()
        heard[pid] = True
        row = self._last_heard[pid]
        np.maximum(row, np.where(heard, round_number, row), out=row)
        suspected = row < (round_number - self.suspicion_rounds)
        raised = int(np.count_nonzero(suspected & ~self._suspected[pid]))
        cleared = int(np.count_nonzero(~suspected & self._suspected[pid]))
        if raised:
            self._suspicions_raised.inc(raised)
        if cleared:
            self._suspicions_cleared.inc(cleared)
        self._suspected[pid] = suspected

    def observe_rows(
        self,
        round_number: int,
        delivered: np.ndarray,
        rows: Optional[Sequence[int]] = None,
    ) -> None:
        """Feed one round's delivery matrix for a subset of receivers.

        Equivalent to calling :meth:`observe_row` for each pid in
        ``rows`` (all of them when ``rows`` is ``None``), vectorized:
        by row-locality the per-row updates are independent, and the
        suspicion counters receive the same totals (per-row increments
        sum).  This is the bulk seam the batched round-sync executor
        uses to replay each round's observations in one pass.
        """
        delivered = np.asarray(delivered, dtype=bool)
        if delivered.shape != (self.n, self.n):
            raise ValueError("delivery matrix has wrong shape")
        sel = (
            np.arange(self.n)
            if rows is None
            else np.asarray(list(rows), dtype=int)
        )
        if sel.size == 0:
            return
        heard = delivered[sel].copy()
        heard[np.arange(sel.size), sel] = True
        block = self._last_heard[sel]
        np.maximum(block, np.where(heard, round_number, block), out=block)
        self._last_heard[sel] = block
        suspected = block < (round_number - self.suspicion_rounds)
        previous = self._suspected[sel]
        raised = int(np.count_nonzero(suspected & ~previous))
        cleared = int(np.count_nonzero(~suspected & previous))
        if raised:
            self._suspicions_raised.inc(raised)
        if cleared:
            self._suspicions_cleared.inc(cleared)
        self._suspected[sel] = suspected

    def alive(self, pid: int, round_number: int) -> np.ndarray:
        """Mask of processes inside ``pid``'s trust window at ``round_number``.

        This is the window :meth:`trusted` selects from; it must be the
        exact complement of :meth:`suspected` at every round, or trust
        and suspicion accounting drift apart at the window boundary.
        """
        return self._last_heard[pid] >= round_number - self.suspicion_rounds

    def suspected(self, pid: int, round_number: int) -> np.ndarray:
        """Mask of processes outside ``pid``'s window at ``round_number``.

        The same windowed comparison :meth:`observe` uses for the
        suspicion metrics, exposed per-process for inspection and tests.
        """
        return self._last_heard[pid] < (round_number - self.suspicion_rounds)

    def trusted(self, pid: int, round_number: int) -> int:
        """The smallest-id process ``pid`` heard within the suspicion window."""
        alive = np.flatnonzero(self.alive(pid, round_number))
        if alive.size == 0:
            return pid  # heard nobody recently — trust self
        return int(alive[0])

    def query(self, pid: int, round_number: int) -> int:
        leader = self.trusted(pid, round_number)
        previous = self._last_output.get(pid)
        if previous is not None and previous != leader:
            self._leader_changes.inc()
        self._last_output[pid] = leader
        return leader
