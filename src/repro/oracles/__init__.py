"""Leader oracles (Ω) and leader election policies.

The GIRAF-level oracle interfaces live in :mod:`repro.giraf.oracle`; this
package re-exports them and adds the *election policies* of the paper's
evaluation:

- the paper designates a fixed, measured-to-be-well-connected node as the
  leader for all runs (UK on PlanetLab), relying on leader-stability
  results [24, 1, 16] — :func:`ping_elected_oracle` reproduces exactly
  that: ping, pick, fix;
- an intentionally *average* leader for the Section 5.2 comparison.
"""

from repro.giraf.oracle import (
    Oracle,
    NullOracle,
    FixedLeaderOracle,
    EventuallyStableLeaderOracle,
    RotatingLeaderOracle,
    ScriptedOracle,
)
from repro.oracles.election import ping_elected_oracle, average_leader_oracle
from repro.oracles.omega import HeartbeatOmega

__all__ = [
    "HeartbeatOmega",
    "Oracle",
    "NullOracle",
    "FixedLeaderOracle",
    "EventuallyStableLeaderOracle",
    "RotatingLeaderOracle",
    "ScriptedOracle",
    "ping_elected_oracle",
    "average_leader_oracle",
]
