"""Leader election policies used by the experiments.

The paper does not run an election protocol ("implementing a leader
election algorithm is beyond the scope of this paper"); instead it
measures round-trip times with pings before the experiment and designates
one well-connected process as leader for all runs, justified by stable
leader election results [24, 1].  These helpers reproduce that procedure.
"""

from __future__ import annotations

from typing import Tuple

from repro.giraf.oracle import FixedLeaderOracle
from repro.net.base import LatencyModel
from repro.net.ping import measure_latency_table, select_leader


def ping_elected_oracle(
    model: LatencyModel, pings: int = 20
) -> Tuple[FixedLeaderOracle, int]:
    """Ping the network, pick the best-connected node, fix it as leader.

    Returns ``(oracle, leader)``.  This is the paper's "good leader"
    setting (UK in the WAN runs).
    """
    table = measure_latency_table(model, pings=pings)
    leader = select_leader(table, method="mean_rtt")
    return FixedLeaderOracle(leader), leader


def average_leader_oracle(
    model: LatencyModel, pings: int = 20
) -> Tuple[FixedLeaderOracle, int]:
    """Fix the node of *median* connectivity as leader.

    The Section 5.2 counterfactual: "when we run ◊LM and ◊WLM with a less
    optimal leader, whose links have average timeliness, ... much bigger
    timeouts are needed for reasonable performance".
    """
    table = measure_latency_table(model, pings=pings)
    leader = select_leader(table, method="median")
    return FixedLeaderOracle(leader), leader
