"""The asyncio job queue: admission control, dedup, priority dispatch.

:class:`SweepService` is a long-lived scheduler wrapping the sweep
engine.  Clients :meth:`~SweepService.submit` typed jobs
(:mod:`repro.service.jobs`) and await their results; the service

- **admits or rejects**: each priority class has a bounded queue depth
  (unfinished jobs); past it, submission raises
  :class:`AdmissionRejected` with the reason, instead of letting the
  backlog grow without bound;
- **dedupes in flight**: a job whose content key equals an unfinished
  job's joins that job's future instead of recomputing — two identical
  concurrent sweeps are one computation, and both clients receive the
  same bit-identical artifact;
- **schedules cells, not jobs**: a job is dispatched one cell at a
  time, interactive class first, subject to per-class concurrency
  budgets — so a short interactive query overtakes a paper-scale batch
  sweep at the next free worker slot instead of queueing behind the
  whole sweep (worst-case head-of-line wait: one cell per worker);
- **executes anywhere**: cells run on a pluggable
  :class:`~repro.experiments.parallel.CellExecutor` (in-process
  threads by default; processes or an injected stub/multi-host
  transport equally);
- **emits telemetry**: the ``service.*`` instrument family on a
  :class:`~repro.obs.registry.MetricsRegistry` — per-class queue
  depths, wait/service-time histograms, dedup hits, admission
  rejections, per-cell timing and worker utilization.

Threading model: every piece of scheduler state (including the metrics
registry, which is deliberately not thread-safe) is touched only from
the event-loop thread; worker results re-enter the loop through
``asyncio.wrap_future``.  All timing uses ``time.perf_counter`` — the
service must keep honest latency accounting even while
:mod:`repro.faults` steps the wall clock in the same process.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Callable, Dict, Optional, Sequence

from repro.experiments.parallel import CellExecutor, CellOutcome
from repro.obs.registry import MetricsRegistry, registry_or_null
from repro.service.executor import ThreadCellExecutor
from repro.service.jobs import JobSpec, Priority

#: Default bound on unfinished jobs per class; past it, submissions are
#: rejected with reason ``queue_full``.
DEFAULT_MAX_DEPTH = {Priority.INTERACTIVE: 64, Priority.BATCH: 8}


class AdmissionRejected(RuntimeError):
    """A submission the service refused, with a machine-readable reason."""

    def __init__(self, reason: str, priority: Priority, detail: str = "") -> None:
        message = f"admission rejected ({priority.value}): {reason}"
        if detail:
            message += f" — {detail}"
        super().__init__(message)
        self.reason = reason
        self.priority = priority


class _JobRecord:
    """Scheduler-internal state of one admitted (possibly shared) job."""

    __slots__ = (
        "spec",
        "key",
        "priority",
        "cells",
        "results",
        "next_cell",
        "done_cells",
        "submitted",
        "started",
        "failed",
        "retired",
        "future",
        "clients",
    )

    def __init__(
        self,
        spec: JobSpec,
        key: str,
        cells: Sequence,
        submitted: float,
        future: "asyncio.Future[Any]",
    ) -> None:
        self.spec = spec
        self.key = key
        self.priority = spec.priority
        self.cells = list(cells)
        self.results: list[Any] = [None] * len(self.cells)
        self.next_cell = 0
        self.done_cells = 0
        self.submitted = submitted
        self.started: Optional[float] = None
        self.failed = False
        self.retired = False
        self.future = future
        self.clients = 1

    @property
    def dispatchable(self) -> bool:
        return not self.failed and self.next_cell < len(self.cells)


class JobHandle:
    """A client's view of one submitted (possibly deduplicated) job."""

    def __init__(self, record: _JobRecord, deduped: bool) -> None:
        self._record = record
        #: True when this submission joined an identical in-flight job.
        self.deduped = deduped

    @property
    def key(self) -> str:
        """The job's content-hash dedup key."""
        return self._record.key

    @property
    def priority(self) -> Priority:
        return self._record.priority

    def done(self) -> bool:
        return self._record.future.done()

    async def result(self) -> Any:
        """Await the job's artifact (shared across deduped handles)."""
        return await asyncio.shield(self._record.future)


class SweepService:
    """The long-lived job queue; see the module docstring.

    Args:
        executor: cell backend; defaults to an in-process
            :class:`ThreadCellExecutor` with ``workers`` threads.  The
            service owns whichever executor it uses: it is entered on
            ``__aenter__`` and shut down on :meth:`close`.
        workers: thread count for the default executor (ignored when
            ``executor`` is given).
        budgets: per-class cap on concurrently executing cells.  The
            default reserves one worker slot from the batch class
            (``{INTERACTIVE: W, BATCH: max(1, W - 1)}``), trading a
            sliver of batch throughput for an always-free slot under a
            sustained interactive stream; pass ``{Priority.BATCH: W}``
            to make batch work-conserving.
        max_depth: per-class admission bound on unfinished jobs
            (:data:`DEFAULT_MAX_DEPTH`).
        priorities: when ``False``, dispatch is a single FIFO over
            arrival order with no class budgets — the no-priority
            baseline the service benchmark compares against.
        metrics: optional registry receiving the ``service.*`` family.

    All methods must be called from the event-loop thread.
    """

    def __init__(
        self,
        executor: Optional[CellExecutor] = None,
        *,
        workers: Optional[int] = None,
        budgets: Optional[Dict[Priority, int]] = None,
        max_depth: Optional[Dict[Priority, int]] = None,
        priorities: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if executor is None:
            executor = ThreadCellExecutor(workers if workers else 2)
        self._executor = executor
        slots = executor.workers
        defaults = {
            Priority.INTERACTIVE: slots,
            Priority.BATCH: max(1, slots - 1),
        }
        if budgets:
            defaults.update(budgets)
        self._budgets = defaults
        self._max_depth = dict(DEFAULT_MAX_DEPTH)
        if max_depth:
            self._max_depth.update(max_depth)
        self._priorities = priorities
        self._metrics = registry_or_null(metrics)
        self._clock = clock

        self._inflight: Dict[str, _JobRecord] = {}
        self._queues: Dict[Priority, deque] = {
            Priority.INTERACTIVE: deque(),
            Priority.BATCH: deque(),
        }
        self._arrival: deque = deque()  # FIFO order, for priorities=False
        self._depth = {Priority.INTERACTIVE: 0, Priority.BATCH: 0}
        self._cells_in_flight = {Priority.INTERACTIVE: 0, Priority.BATCH: 0}
        self._total_in_flight = 0
        self._busy_seconds = 0.0
        self._first_submit: Optional[float] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Client surface.
    # ------------------------------------------------------------------
    def submit(self, job: JobSpec) -> JobHandle:
        """Admit ``job`` (or join an identical in-flight one).

        Returns a :class:`JobHandle`; raises :class:`AdmissionRejected`
        when the service is closed or the class's queue is at depth.
        """
        priority = job.priority
        self._metrics.counter(
            "service.submitted", **{"class": priority.value}
        ).inc()
        if self._closed:
            self._reject("closed", priority, "service is shut down")
        key = job.key()
        existing = self._inflight.get(key)
        if existing is not None:
            existing.clients += 1
            self._metrics.counter(
                "service.dedup_hits", **{"class": priority.value}
            ).inc()
            return JobHandle(existing, deduped=True)
        depth = self._depth[priority]
        limit = self._max_depth[priority]
        if depth >= limit:
            self._reject(
                "queue_full",
                priority,
                f"{depth} unfinished {priority.value} jobs at limit {limit}",
            )

        now = self._clock()
        if self._first_submit is None:
            self._first_submit = now
        future: asyncio.Future[Any] = (
            asyncio.get_running_loop().create_future()
        )
        record = _JobRecord(job, key, job.cells(), now, future)
        self._inflight[key] = record
        self._depth[priority] += 1
        self._set_depth_gauges()
        if not record.cells:
            # Nothing to execute: assemble immediately (still a real
            # job for dedup/metrics purposes).
            record.started = now
            self._observe_wait(record)
            self._finish(record)
        else:
            # Only the structure the active mode scans is populated —
            # the other would never be popped and grow without bound in
            # a long-lived service.
            if self._priorities:
                self._queues[priority].append(record)
            else:
                self._arrival.append(record)
            self._dispatch()
        return JobHandle(record, deduped=False)

    async def drain(self) -> None:
        """Wait until every admitted job has finished (or failed)."""
        while self._inflight:
            futures = [
                record.future for record in list(self._inflight.values())
            ]
            await asyncio.gather(*futures, return_exceptions=True)

    async def close(self) -> None:
        """Stop admitting, drain, record utilization, release the executor."""
        self._closed = True
        await self.drain()
        if self._first_submit is not None:
            elapsed = self._clock() - self._first_submit
            if elapsed > 0:
                self._metrics.gauge("service.worker_utilization").set(
                    min(
                        1.0,
                        self._busy_seconds
                        / (elapsed * self._executor.workers),
                    )
                )
        self._executor.__exit__(None, None, None)

    async def __aenter__(self) -> "SweepService":
        self._executor.__enter__()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Introspection (loop thread only).
    # ------------------------------------------------------------------
    def queue_depth(self, priority: Priority) -> int:
        """Unfinished admitted jobs of ``priority``."""
        return self._depth[priority]

    @property
    def cells_in_flight(self) -> int:
        return self._total_in_flight

    # ------------------------------------------------------------------
    # Scheduling internals.
    # ------------------------------------------------------------------
    def _reject(self, reason: str, priority: Priority, detail: str) -> None:
        self._metrics.counter(
            "service.admission_rejections",
            **{"class": priority.value, "reason": reason},
        ).inc()
        raise AdmissionRejected(reason, priority, detail)

    def _set_depth_gauges(self) -> None:
        for priority, depth in self._depth.items():
            self._metrics.gauge(
                "service.queue_depth", **{"class": priority.value}
            ).set(depth)

    def _scan_order(self):
        if self._priorities:
            yield from (
                (self._budgets[cls], self._queues[cls])
                for cls in (Priority.INTERACTIVE, Priority.BATCH)
            )
        else:
            yield self._executor.workers, self._arrival

    def _next_record(self) -> Optional[_JobRecord]:
        """The highest-priority record with a runnable cell, or ``None``."""
        for budget, queue in self._scan_order():
            while queue and not queue[0].dispatchable:
                queue.popleft()
            if not queue:
                continue
            record = queue[0]
            if (
                self._priorities
                and self._cells_in_flight[record.priority] >= budget
            ):
                continue
            return record
        return None

    def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        while self._total_in_flight < self._executor.workers:
            record = self._next_record()
            if record is None:
                break
            index = record.next_cell
            record.next_cell += 1
            if record.started is None:
                record.started = self._clock()
                self._observe_wait(record)
            self._cells_in_flight[record.priority] += 1
            self._total_in_flight += 1
            task, arg = record.cells[index]
            loop.create_task(self._run_cell(record, index, task, arg))

    async def _run_cell(
        self, record: _JobRecord, index: int, task: Callable, arg: Any
    ) -> None:
        label = {"class": record.priority.value}
        error: Optional[BaseException] = None
        outcome: Any = None
        try:
            outcome = await asyncio.wrap_future(
                self._executor.submit(task, arg)
            )
        except BaseException as exc:  # a failed cell fails its job
            error = exc
        self._cells_in_flight[record.priority] -= 1
        self._total_in_flight -= 1
        if error is not None:
            self._fail(record, error)
        elif not record.retired:
            if isinstance(outcome, CellOutcome):
                record.results[index] = outcome.result
                self._busy_seconds += outcome.seconds
                self._metrics.histogram(
                    "service.cell_seconds", **label
                ).observe(outcome.seconds)
                self._metrics.counter("service.cache_hits", **label).inc(
                    outcome.cache_hits
                )
                self._metrics.counter("service.cache_misses", **label).inc(
                    outcome.cache_misses
                )
            else:  # a bare result from a custom executor/transport
                record.results[index] = outcome
            self._metrics.counter("service.cells_executed", **label).inc()
            record.done_cells += 1
            if record.done_cells == len(record.cells):
                self._finish(record)
        self._dispatch()

    def _finish(self, record: _JobRecord) -> None:
        try:
            value = record.spec.assemble(record.results)
        except BaseException as exc:
            self._fail(record, exc)
            return
        started = record.started if record.started is not None else record.submitted
        self._metrics.histogram(
            "service.service_seconds", **{"class": record.priority.value}
        ).observe(self._clock() - started)
        self._metrics.counter(
            "service.jobs",
            **{"class": record.priority.value, "state": "completed"},
        ).inc()
        self._retire(record)
        if not record.future.done():
            record.future.set_result(value)

    def _fail(self, record: _JobRecord, exc: BaseException) -> None:
        if record.retired:
            return
        record.failed = True
        self._metrics.counter(
            "service.jobs",
            **{"class": record.priority.value, "state": "failed"},
        ).inc()
        self._retire(record)
        if not record.future.done():
            record.future.set_exception(exc)

    def _retire(self, record: _JobRecord) -> None:
        if record.retired:
            return
        record.retired = True
        self._inflight.pop(record.key, None)
        self._depth[record.priority] -= 1
        self._set_depth_gauges()

    def _observe_wait(self, record: _JobRecord) -> None:
        self._metrics.histogram(
            "service.wait_seconds", **{"class": record.priority.value}
        ).observe(record.started - record.submitted)


def run_jobs(
    jobs: Sequence[JobSpec],
    *,
    executor: Optional[CellExecutor] = None,
    workers: Optional[int] = None,
    budgets: Optional[Dict[Priority, int]] = None,
    max_depth: Optional[Dict[Priority, int]] = None,
    priorities: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> list[Any]:
    """Synchronous client: run ``jobs`` through a fresh service.

    Submits everything up front (so dedup and priorities apply across
    the set), awaits all results in submission order, and closes the
    service.  This is the ``--serve`` path of ``python -m
    repro.experiments``.
    """

    async def _go() -> list[Any]:
        async with SweepService(
            executor=executor,
            workers=workers,
            budgets=budgets,
            max_depth=max_depth,
            priorities=priorities,
            metrics=metrics,
        ) as service:
            handles = [service.submit(job) for job in jobs]
            return [await handle.result() for handle in handles]

    return asyncio.run(_go())
