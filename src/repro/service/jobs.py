"""Typed job specs for the sweep service.

A :class:`JobSpec` is one client request — a WAN sweep, the LAN figure,
a robustness study, or a single interactive decision query — expressed
as independent cell tasks plus an assembly step:

- :meth:`JobSpec.cells` returns picklable ``(task, args)`` pairs (the
  engine's cells-as-tasks surface, :mod:`repro.experiments.parallel`),
  each a pure function of its arguments.  Cells are the scheduling
  unit: a paper-scale sweep is hundreds of short tasks, so an
  interactive query never waits behind more than one in-flight cell
  per worker.
- :meth:`JobSpec.assemble` rebuilds the request's artifact from the
  serial-order cell results on the scheduler thread.  Because cells and
  assembly are exactly the engine's own, a service-returned result is
  bit-identical to the direct engine call.
- :meth:`JobSpec.key` is a content hash over every result-determining
  parameter (the :func:`repro.experiments.cache.content_key`
  discipline, shared with the trace cache), which is what makes
  in-flight dedup sound: equal keys imply bit-identical results.

Priority classes: :attr:`Priority.INTERACTIVE` jobs are dispatched
before :attr:`Priority.BATCH` jobs whenever both have runnable cells.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.experiments.cache import cached_trace, content_key
from repro.experiments.config import QUICK, QUICK_LAN, SweepConfig
from repro.experiments.decision import DecisionStats, decision_stats
from repro.experiments.figures import FigureSeries, WanSweep
from repro.experiments.measurement import timely_matrices
from repro.experiments.parallel import (
    CellOutcome,
    _profiled,
    assemble_lan_figure,
    assemble_wan_sweep,
    lan_cell_tasks,
    rows_from_flat,
    wan_cell_tasks,
)
from repro.net.planetlab import LEADER_NODE

#: Version tag folded into every job key: bump when a job type's
#: computation changes so "identical request" never spans the change.
JOB_KEY_VERSION = "v1"

#: One schedulable unit of work: a picklable task plus its argument.
CellTask = tuple[Callable[[Any], CellOutcome], Any]


class Priority(enum.Enum):
    """Admission/dispatch class of a job."""

    INTERACTIVE = "interactive"
    BATCH = "batch"


def _config_params(config: SweepConfig) -> dict[str, object]:
    """The result-determining fields of a sweep config, for job keys."""
    return {
        "n": config.n,
        "rounds_per_run": config.rounds_per_run,
        "runs": config.runs,
        "start_points": config.start_points,
        "timeouts": tuple(config.timeouts),
        "seed": config.seed,
    }


@dataclass(frozen=True)
class JobSpec:
    """Base class of one typed service request.

    Subclasses carry their parameters as frozen dataclass fields and
    implement :meth:`key`, :meth:`cells` and :meth:`assemble`.
    """

    def key(self) -> str:
        """Content hash identifying this request's full parameter set."""
        raise NotImplementedError

    def cells(self) -> Sequence[CellTask]:
        """The request as independent, picklable cell tasks."""
        raise NotImplementedError

    def assemble(self, results: Sequence[Any]) -> Any:
        """Rebuild the request's artifact from serial-order cell results."""
        raise NotImplementedError


@dataclass(frozen=True)
class WanSweepJob(JobSpec):
    """A full WAN measurement sweep (Section 5.3); resolves to a
    :class:`~repro.experiments.figures.WanSweep`."""

    config: SweepConfig = QUICK
    leader: int = LEADER_NODE
    priority: Priority = Priority.BATCH

    def key(self) -> str:
        return content_key(
            "job:wan_sweep",
            JOB_KEY_VERSION,
            leader=self.leader,
            **_config_params(self.config),
        )

    def cells(self) -> Sequence[CellTask]:
        return wan_cell_tasks(self.config)

    def assemble(self, results: Sequence[Any]) -> WanSweep:
        return assemble_wan_sweep(
            self.config, self.leader, rows_from_flat(results, self.config)
        )


@dataclass(frozen=True)
class LanFigureJob(JobSpec):
    """The LAN measurement figure (Section 5.2); resolves to the
    figure 1(c) :class:`~repro.experiments.figures.FigureSeries`."""

    config: SweepConfig = QUICK_LAN
    priority: Priority = Priority.BATCH

    def key(self) -> str:
        return content_key(
            "job:lan_figure", JOB_KEY_VERSION, **_config_params(self.config)
        )

    def cells(self) -> Sequence[CellTask]:
        return lan_cell_tasks(self.config)

    def assemble(self, results: Sequence[Any]) -> FigureSeries:
        return assemble_lan_figure(
            self.config, rows_from_flat(results, self.config)
        )


def _decision_cell(
    config: SweepConfig, t_index: int, r_index: int, model: str
) -> DecisionStats:
    """One decision query, computed exactly as the WAN figures do.

    Same trace (via the cache), same matrices, same content-derived
    decision RNG as :func:`repro.experiments.figures._decision_series` —
    so a served answer is bit-identical to the figure pipeline's value
    for the same cell.
    """
    timeout = config.timeouts[t_index]
    seed = config.run_seed(t_index, r_index)
    trace = cached_trace(
        "wan", config.n, config.rounds_per_run, timeout, seed
    )
    matrices = timely_matrices(trace, timeout)
    leader = LEADER_NODE if model in ("LM", "WLM") else None
    rng = np.random.default_rng(
        config.run_seed(t_index, r_index, purpose="decision")
    )
    return decision_stats(
        matrices,
        model,
        round_length=timeout,
        start_points=config.start_points,
        leader=leader,
        rng=rng,
    )


def decision_task(args: tuple[SweepConfig, int, int, str]) -> CellOutcome:
    """Picklable cell task wrapping :func:`_decision_cell`."""
    return _profiled(lambda: _decision_cell(*args))


@dataclass(frozen=True)
class DecisionQuery(JobSpec):
    """One interactive decision-latency query: rounds/time to global
    decision for ``model`` on one (timeout, run) cell; resolves to a
    :class:`~repro.experiments.decision.DecisionStats`."""

    config: SweepConfig = QUICK
    t_index: int = 0
    r_index: int = 0
    model: str = "WLM"
    priority: Priority = Priority.INTERACTIVE

    def key(self) -> str:
        return content_key(
            "job:decision",
            JOB_KEY_VERSION,
            t_index=self.t_index,
            r_index=self.r_index,
            model=self.model,
            **_config_params(self.config),
        )

    def cells(self) -> Sequence[CellTask]:
        return [
            (
                decision_task,
                (self.config, self.t_index, self.r_index, self.model),
            )
        ]

    def assemble(self, results: Sequence[Any]) -> DecisionStats:
        return results[0]


@dataclass(frozen=True)
class RobustnessJob(JobSpec):
    """The fault-robustness study: a WAN sweep's cells plus the
    robustness report as the assembly step; resolves to the rendered
    report string (see :mod:`repro.experiments.robustness`)."""

    config: SweepConfig = QUICK
    seed: int = 0
    leader: int = LEADER_NODE
    priority: Priority = Priority.BATCH

    def key(self) -> str:
        return content_key(
            "job:robustness",
            JOB_KEY_VERSION,
            fault_seed=self.seed,
            leader=self.leader,
            **_config_params(self.config),
        )

    def cells(self) -> Sequence[CellTask]:
        return wan_cell_tasks(self.config)

    def assemble(self, results: Sequence[Any]) -> str:
        # Imported here: robustness pulls in the figure/decision stack,
        # which not every service deployment needs at import time.
        from repro.experiments.robustness import robustness_report

        sweep = assemble_wan_sweep(
            self.config, self.leader, rows_from_flat(results, self.config)
        )
        return robustness_report(sweep=sweep, seed=self.seed)
