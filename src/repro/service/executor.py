"""Executor seam of the sweep service.

The service schedules *cells* onto a :class:`CellExecutor` — the
pluggable backend extracted from the sweep engine
(:mod:`repro.experiments.parallel`), re-exported here as the service's
execution surface:

- :class:`SerialCellExecutor` — in-process, inline (debugging, CLI
  ``--jobs 1``).
- :class:`ThreadCellExecutor` — in-process, concurrent; the service
  default (shares the trace cache without pickling, keeps the event
  loop responsive).
- :class:`ProcessCellExecutor` — one worker process per slot, trace
  cache inherited via the pool initializer.
- :class:`StubCellExecutor` (defined here) — the injectable seam for
  tests and for a future multi-host transport: submissions are either
  routed through a caller-supplied ``transport`` callable (ship the
  task, return the wire result) or parked for manual, deterministic
  completion.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Any, Callable, Optional

from repro.experiments.parallel import (
    CellExecutor,
    CellOutcome,
    ProcessCellExecutor,
    SerialCellExecutor,
    ThreadCellExecutor,
    make_cell_executor,
)

__all__ = [
    "CellExecutor",
    "CellOutcome",
    "ProcessCellExecutor",
    "SerialCellExecutor",
    "StubCellExecutor",
    "ThreadCellExecutor",
    "make_cell_executor",
]


class StubCellExecutor(CellExecutor):
    """An injectable executor that never computes on its own.

    Two modes:

    - **Transport mode** (``transport`` given): ``submit`` calls
      ``transport(task, arg)`` synchronously and resolves the future
      with its return value — the seam a multi-host backend plugs into
      (serialize the task, run it remotely, return the wire result).
    - **Manual mode** (default): ``submit`` parks ``(task, arg)`` on
      :attr:`pending` and returns an unresolved future; the owner
      drives completion with :meth:`run_next` / :meth:`run_all` (which
      compute ``task(arg)`` inline) or :meth:`fail_next`.  This gives
      tests deterministic control over completion order and lets them
      observe exactly what the scheduler dispatched, and when.

    ``submitted`` counts every submission ever made, so "exactly one
    computation for N identical jobs" is directly checkable.
    """

    inline = False

    def __init__(
        self,
        workers: int = 2,
        transport: Optional[Callable[[Callable[[Any], Any], Any], Any]] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self._transport = transport
        #: Parked submissions, oldest first: ``(task, arg, future)``.
        self.pending: list[tuple[Callable[[Any], Any], Any, Future]] = []
        #: Total submissions ever made.
        self.submitted = 0

    def submit(self, task: Callable[[Any], Any], arg: Any) -> Future:
        self.submitted += 1
        future: Future = Future()
        if self._transport is not None:
            try:
                future.set_result(self._transport(task, arg))
            except BaseException as exc:
                future.set_exception(exc)
        else:
            self.pending.append((task, arg, future))
        return future

    def run_next(self, index: int = 0) -> Any:
        """Compute and resolve the pending submission at ``index``."""
        task, arg, future = self.pending.pop(index)
        try:
            result = task(arg)
        except BaseException as exc:
            future.set_exception(exc)
            raise
        future.set_result(result)
        return result

    def run_all(self) -> int:
        """Compute every currently pending submission; returns the count."""
        count = 0
        while self.pending:
            self.run_next()
            count += 1
        return count

    def fail_next(self, exc: BaseException, index: int = 0) -> None:
        """Resolve the pending submission at ``index`` with ``exc``."""
        _task, _arg, future = self.pending.pop(index)
        future.set_exception(exc)
