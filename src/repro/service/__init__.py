"""repro.service — the sweep engine as a long-lived, multi-client service.

The paper's question (*which timing model should you assume?*) is
answered operationally by running many sweeps, decision queries and
robustness studies; this package turns the engine that runs them
(:mod:`repro.experiments.parallel`) into a shared service instead of a
library every caller drives alone:

- **Jobs** (:mod:`repro.service.jobs`): typed requests —
  :class:`WanSweepJob`, :class:`LanFigureJob`, :class:`DecisionQuery`,
  :class:`RobustnessJob` — each a set of pure cell tasks plus an
  assembly step, keyed by a content hash (the trace cache's
  discipline), in one of two priority classes
  (:attr:`Priority.INTERACTIVE` / :attr:`Priority.BATCH`).
- **Scheduler** (:mod:`repro.service.scheduler`):
  :class:`SweepService`, an asyncio job queue with admission control
  (bounded per-class queue depth, :class:`AdmissionRejected` with a
  reason when saturated), in-flight dedup (identical concurrent
  requests collapse to one computation; every client gets the same
  bit-identical artifact), and cell-granular priority dispatch with
  per-class concurrency budgets (an interactive query never waits
  behind more than one in-flight cell per worker).
- **Executors** (:mod:`repro.service.executor`): the pluggable cell
  backends — serial, threads (default), processes, and the injectable
  :class:`StubCellExecutor` seam for tests and future multi-host
  transports.

Telemetry: the ``service.*`` instrument family (submissions, queue
depths, wait/service-time histograms per class, dedup hits, admission
rejections, per-cell timing, worker utilization) on any
:class:`repro.obs.MetricsRegistry` you pass in.

Synchronous clients use :func:`run_jobs`; ``python -m repro.experiments
--serve`` routes the standard pipeline through it.
"""

from repro.service.executor import (
    CellExecutor,
    ProcessCellExecutor,
    SerialCellExecutor,
    StubCellExecutor,
    ThreadCellExecutor,
    make_cell_executor,
)
from repro.service.jobs import (
    DecisionQuery,
    JobSpec,
    LanFigureJob,
    Priority,
    RobustnessJob,
    WanSweepJob,
)
from repro.service.scheduler import (
    DEFAULT_MAX_DEPTH,
    AdmissionRejected,
    JobHandle,
    SweepService,
    run_jobs,
)

__all__ = [
    "AdmissionRejected",
    "CellExecutor",
    "DEFAULT_MAX_DEPTH",
    "DecisionQuery",
    "JobHandle",
    "JobSpec",
    "LanFigureJob",
    "Priority",
    "ProcessCellExecutor",
    "RobustnessJob",
    "SerialCellExecutor",
    "StubCellExecutor",
    "SweepService",
    "ThreadCellExecutor",
    "WanSweepJob",
    "make_cell_executor",
    "run_jobs",
]
