"""The paper's primary contribution.

- :mod:`messages` — the wire format of Algorithm 2:
  ``(msgType, est, ts, leader, majApproved)``.
- :mod:`wlm` — Algorithm 2 itself: the time- and message-efficient
  consensus algorithm for the eventual-WLM model.  Linear stable-state
  message complexity; global decision by GSR+4, or GSR+3 when the leader
  oracle stabilizes one round early (Theorem 10).
- :mod:`simulation` — Algorithm 3: the simulation of the eventual-LM model
  inside eventual WLM (two WLM rounds per simulated LM round), used for the
  "simulated WLM" comparison line (7 rounds to global decision).
"""

from repro.core.messages import MsgType, ConsensusMessage
from repro.core.wlm import WlmConsensus
from repro.core.simulation import LmOverWlmSimulation

__all__ = ["MsgType", "ConsensusMessage", "WlmConsensus", "LmOverWlmSimulation"]
