"""Algorithm 3: simulating the eventual-LM model inside eventual WLM.

Every two ◊WLM rounds implement one ◊LM round (Appendix B):

- **odd** GIRAF rounds carry the simulated algorithm's own messages;
- **even** GIRAF rounds forward, as an array, everything received in the
  preceding odd round.  Because the ◊WLM leader hears from a majority and
  is heard by everyone, the forwarded arrays give every process the
  previous round's messages from a majority — which is what ◊LM requires.

Lemma 11: GSR_{◊LM} ≤ GSR_{◊WLM} + 2; with the 3-round ◊LM algorithm
plugged in, global decision takes at most 7 ◊WLM rounds (α(l) = 2l + 2).

This is the "simulated ◊WLM" line of the paper's comparison — it shows why
the *direct* Algorithm 2 matters: keeping ◊WLM's weak timeliness
requirements satisfied for 7 rounds is far harder than for 4.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Mapping, Optional

from repro.giraf.kernel import GirafAlgorithm, Inbox, RoundOutput


class LmOverWlmSimulation(GirafAlgorithm):
    """Algorithm 3, code for process ``p_i``.

    Wraps any GIRAF algorithm designed for ◊LM (the ``inner`` algorithm)
    and runs it in ◊WLM at half speed.  All messages go to all processes
    (``Π``) — the simulation costs quadratic messages, unlike the direct
    Algorithm 2.
    """

    def __init__(self, pid: int, n: int, inner: GirafAlgorithm) -> None:
        self.pid = pid
        self.n = n
        self.inner = inner
        self._all = frozenset(range(n))
        self._fixed = Inbox()  # M_i^fixed: reconstructed ◊LM inboxes
        #: ``lm_round -> giraf round`` at which the inner compute ran —
        #: the data behind the α-reducibility measurement (Lemma 12:
        #: simulated round GSR_LM + l happens by GSR_WLM + 2l + 2).
        self.lm_round_log: dict[int, int] = {}

    def initialize(self, oracle_output: Any) -> RoundOutput:
        inner_output = self.inner.initialize(oracle_output)
        # Record the inner algorithm's own round-1 message so the
        # reconstruction sees it even if no forwarded array carries it.
        self._fixed.record(1, self.pid, inner_output.payload)
        return RoundOutput(inner_output.payload, self._all)

    def compute(self, round_number: int, inbox: Inbox, oracle_output: Any) -> RoundOutput:
        if round_number % 2 == 1:
            # Odd round: forward everything received this round (line 6).
            forwarded: dict[int, Any] = dict(inbox.round(round_number))
            return RoundOutput(forwarded, self._all)

        # Even round k: each received message is an array of the round-(k-1)
        # messages its sender collected; reconstruct round k/2 of ◊LM
        # (lines 8-10).
        lm_round = round_number // 2
        for array in inbox.round(round_number).values():
            if not isinstance(array, Mapping):
                continue
            for original_sender, message in array.items():
                if self._fixed.get(lm_round, original_sender) is None:
                    self._fixed.record(lm_round, original_sender, message)

        inner_output = self.inner.compute(lm_round, self._fixed, oracle_output)
        self.lm_round_log[lm_round] = round_number
        self._fixed.record(lm_round + 1, self.pid, inner_output.payload)
        return RoundOutput(inner_output.payload, self._all)

    def decision(self) -> Any:
        return self.inner.decision()

    @property
    def proposal(self) -> Any:
        """Expose the wrapped algorithm's proposal for validity checking."""
        return getattr(self.inner, "proposal", None)
