"""Algorithm 2: the time- and message-efficient consensus algorithm for ◊WLM.

This is a line-by-line transcription of the paper's Algorithm 2.  The key
ideas (Section 3):

- **Fresh timestamps without discovery.**  Unlike Paxos, the leader never
  tries to learn the highest timestamp in the system (which can take O(n)
  rounds after GSR in ◊WLM [13]).  A committing process simply uses the
  current round number as the timestamp — round numbers are monotonically
  increasing, so the timestamp is always fresh.

- **majApproved.**  Trusting a leader that may not know all timestamps is
  made safe by the ``majApproved`` flag: the leader sets it when a majority
  named it as leader in the previous round.  Because two processes cannot
  both be named leader by a majority in the same round, commits of a round
  agree (Lemma 3); and because a majApproved leader heard from a majority,
  it cannot have missed a timestamp that led to decision (Lemma 5).

- **Pipelined proposals.**  The leader makes progress every round from its
  current state, so a stabilization that arrives mid-attempt wastes no
  rounds.

- **Linear message complexity.**  ``Destinations()``: the leader sends to
  everyone; everyone else sends only to its leader.  Once all processes
  trust the same leader (at most one round after GSR), each round carries
  ``2(n-1)`` messages.

Guarantees (Theorem 10): validity and uniform agreement always; global
decision by round GSR+4, and by GSR+3 when the Ω oracle's eventual
property already holds from round GSR-1 (the common stable-leader case).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Optional

from repro.consensus.base import (
    ConsensusAlgorithm,
    ConsensusMessage,
    MsgType,
    round_maximum,
)
from repro.giraf.kernel import Inbox, RoundOutput


class WlmConsensus(ConsensusAlgorithm):
    """The paper's Algorithm 2, code for process ``p_i``."""

    def __init__(self, pid: int, n: int, proposal: Any) -> None:
        super().__init__(pid, n, proposal)
        # Additional state (Algorithm 2, lines 1-6).
        self.est: Any = proposal
        self.ts: int = 0
        self.max_ts: int = 0
        self.maj_approved: bool = False
        self.prev_leader: Optional[int] = None  # prevLD_i
        self.new_leader: Optional[int] = None  # newLD_i
        self.msg_type: MsgType = MsgType.PREPARE

    # ------------------------------------------------------------------
    # procedure Destinations(leader_i)  (lines 9-11)
    # ------------------------------------------------------------------
    def _destinations(self, leader: int) -> FrozenSet[int]:
        if leader == self.pid:
            return frozenset(range(self.n))
        return frozenset({leader})

    def _message(self) -> ConsensusMessage:
        return ConsensusMessage(
            msg_type=self.msg_type,
            est=self.est,
            ts=self.ts,
            leader=self.new_leader,
            maj_approved=self.maj_approved,
        )

    # ------------------------------------------------------------------
    # procedure initialize(leader_i)  (lines 12-14)
    # ------------------------------------------------------------------
    def initialize(self, oracle_output: Any) -> RoundOutput:
        leader = int(oracle_output)
        self.prev_leader = leader
        self.new_leader = leader
        return RoundOutput(self._message(), self._destinations(leader))

    # ------------------------------------------------------------------
    # procedure compute(k_i, M[*][*], leader_i)  (lines 15-30)
    # ------------------------------------------------------------------
    def compute(self, round_number: int, inbox: Inbox, oracle_output: Any) -> RoundOutput:
        leader = int(oracle_output)
        if self._decision is None:
            messages: dict[int, ConsensusMessage] = dict(inbox.round(round_number))
            # Update variables (lines 18-21).  The process always has its
            # own round-k message, so `messages` is never empty.
            self.prev_leader = self.new_leader
            self.new_leader = leader
            self.max_ts, max_est = round_maximum(messages)
            self.maj_approved = (
                sum(1 for m in messages.values() if m.leader == self.pid)
                > self.n // 2
            )

            # Round actions (lines 22-29).
            decide_msg = self._first_decide(messages)
            commit_count = sum(
                1 for m in messages.values() if m.msg_type == MsgType.COMMIT
            )
            own = messages.get(self.pid)
            leader_msg = (
                messages.get(self.prev_leader)
                if self.prev_leader is not None
                else None
            )
            if decide_msg is not None:
                # decide-1 (lines 23-24)
                self.est = decide_msg.est
                self._decide(self.est, round_number)
                self.msg_type = MsgType.DECIDE
            elif (
                commit_count > self.n // 2
                and own is not None
                and own.msg_type == MsgType.COMMIT  # decide-2 (line 25)
                and own.maj_approved  # decide-3 (line 26)
            ):
                self._decide(self.est, round_number)
                self.msg_type = MsgType.DECIDE
            elif leader_msg is not None and leader_msg.maj_approved:
                # commit (lines 27-28)
                self.est = leader_msg.est
                self.ts = round_number
                self.msg_type = MsgType.COMMIT
            else:
                # prepare (line 29)
                self.ts = self.max_ts
                self.est = max_est
                self.msg_type = MsgType.PREPARE

        return RoundOutput(self._message(), self._destinations(leader))

    @staticmethod
    def _first_decide(
        messages: dict[int, ConsensusMessage]
    ) -> Optional[ConsensusMessage]:
        """The DECIDE message from the lowest-id sender, if any (rule decide-1)."""
        for sender in sorted(messages):
            if messages[sender].msg_type == MsgType.DECIDE:
                return messages[sender]
        return None
