"""Wire format of Algorithm 2.

The message is the paper's 5-tuple::

    ( msgType ∈ {PREPARE, COMMIT, DECIDE},
      est     ∈ Values,
      ts      ∈ N,
      leader  ∈ Π,
      majApproved ∈ Boolean )

The types are shared with the baseline algorithms and therefore defined in
:mod:`repro.consensus.base`; this module re-exports them under the core
package for users of the paper's algorithm.
"""

from repro.consensus.base import MsgType, ConsensusMessage

__all__ = ["MsgType", "ConsensusMessage"]
