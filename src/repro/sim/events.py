"""Deterministic discrete-event queue and simulator loop.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes the order total and deterministic: two events scheduled for the same
instant fire in scheduling order, so a run is fully reproducible from its
seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulator is driven incorrectly."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires.
        priority: tie-breaker before the sequence number; lower fires first.
        seq: global scheduling sequence number (assigned by the queue).
        action: zero-argument callable run when the event fires.
        cancelled: cancelled events stay in the heap but are skipped.
        tag: free-form label used in tests and tracing.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    tag: str = field(default="", compare=False)
    _queue: Optional["EventQueue"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._on_cancel(self)


class EventQueue:
    """A priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        # O(1): simulator loops poll the queue length, and a heap scan
        # here turns those loops quadratic.
        return self._live

    def _on_cancel(self, event: Event) -> None:
        """Called exactly once per cancelled in-queue event."""
        self._live -= 1
        event._queue = None

    def push(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        tag: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            action=action,
            tag=tag,
            _queue=self,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                event._queue = None
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        while self._heap and self._heap[0].cancelled:
            # Detach the event as it leaves the heap, exactly as pop()
            # does for live events: the ``len(queue) == live events``
            # invariant must never depend on a back-reference to an
            # event this queue no longer holds.
            dropped = heapq.heappop(self._heap)
            dropped._queue = None
        if not self._heap:
            return None
        return self._heap[0].time


class Simulator:
    """Runs events in time order.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("hello at t=1.5"))
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events awaiting execution."""
        return len(self._queue)

    def schedule(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        tag: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulation time ``time``.

        Scheduling in the past is an error: the simulator never rewinds.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        return self._queue.push(time, action, priority=priority, tag=tag)

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
        tag: str = "",
    ) -> Event:
        """Schedule ``action`` after ``delay`` units of simulation time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, action, priority=priority, tag=tag)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Process events until the queue drains or a limit is hit.

        Args:
            until: stop once the next event would fire after this time.
            max_events: stop after this many events fire in this call.
            stop_when: checked on entry and after each event; return
                ``True`` to stop.

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("run() re-entered; the simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            # A stop condition that already holds must prevent the first
            # event from firing at all: one extra event can mutate state
            # the caller considers final (e.g. a fault callback after
            # every node has stopped).  After this entry check, the
            # per-event check below is exhaustive — no event can run
            # between it and the next pop.
            if stop_when is not None and stop_when():
                return self._now
            while True:
                if max_events is not None and fired >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                event.action()
                self._events_processed += 1
                fired += 1
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
        return self._now

    def fast_forward(self, time: float) -> None:
        """Advance the clock to ``time`` without firing anything.

        Used by batched executors (:mod:`repro.sync.batch`) that compute
        a run's outcome outside the event loop and then leave the
        simulator at the instant the scalar loop would have stopped.
        Rewinding is an error, exactly as for :meth:`schedule`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot fast-forward to {time} before current time {self._now}"
            )
        self._now = time

    def drain(self) -> None:
        """Discard all pending events (used when tearing a run down).

        Discarded events are detached from the abandoned queue so a
        post-drain ``cancel()`` is a true no-op instead of decrementing
        the dead queue's live count (and pinning it in memory through the
        back-reference).
        """
        for event in self._queue._heap:
            event._queue = None
        self._queue = EventQueue()
