"""Discrete-event simulation substrate.

This package provides the deterministic, seeded event-driven machinery on
which the asynchronous experiments run: an event queue (:mod:`events`),
per-process clocks with skew and drift (:mod:`clock`), a message transport
with pluggable latency/loss models (:mod:`transport`), and named random
streams (:mod:`rng`).

The paper's WAN and LAN experiments ran on real machines; here they run on
this simulator, which reproduces the properties those experiments depend
on: heterogeneous link latencies, heavy tails, message loss, and
unsynchronized clocks.
"""

from repro.sim.events import Event, EventQueue, Simulator
from repro.sim.clock import Clock, PerfectClock
from repro.sim.rng import RandomStreams
from repro.sim.transport import Transport, Delivery

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Clock",
    "PerfectClock",
    "RandomStreams",
    "Transport",
    "Delivery",
]
