"""Named, independently seeded random streams.

Every stochastic component of a run (each link's latency sampler, the loss
process, clock skews, workload arrival, ...) draws from its own stream so
that changing one component does not perturb the randomness seen by the
others.  This keeps A/B comparisons between models paired: the same seed
produces the same latency realization regardless of which consensus
algorithm observes it.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """A factory of named, reproducible :class:`numpy.random.Generator` objects."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The per-stream seed is derived by hashing ``(root seed, name)``, so
        streams are stable across runs and independent of creation order.
        """
        generator = self._streams.get(name)
        if generator is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "big")
            generator = np.random.default_rng(child_seed)
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory, e.g. one per repetition of an experiment."""
        digest = hashlib.sha256(f"{self._seed}:spawn:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
