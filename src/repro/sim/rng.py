"""Named, independently seeded random streams.

Every stochastic component of a run (each link's latency sampler, the loss
process, clock skews, workload arrival, ...) draws from its own stream so
that changing one component does not perturb the randomness seen by the
others.  This keeps A/B comparisons between models paired: the same seed
produces the same latency realization regardless of which consensus
algorithm observes it.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root: int, name: str) -> int:
    """Derive a child seed from ``(root, name)`` by SHA-256.

    This is the one seed-derivation rule in the codebase: unlike linear
    combinations (``root * K + index``), hashed derivation cannot collide
    across purposes or indices for any choice of root seed, so every
    (cell, purpose) pair of an experiment gets a provably distinct stream.
    """
    digest = hashlib.sha256(f"{int(root)}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def derive_pcg64_state(root: int, name: str) -> dict:
    """A full raw PCG64 state derived from ``(root, name)`` by SHA-256.

    Seeding ``PCG64(seed)`` runs a ``SeedSequence`` entropy-mixing pass
    (~10x the cost of a raw state assignment), which dominates batch trace
    sampling — every directed link of every model needs its own stream.
    SHA-256 already *is* a high-quality mixer, so its 256-bit digest is
    used directly: 128 bits of state plus a 128-bit stream increment
    (forced odd, as the PCG setseq variant requires).  The resulting dict
    can be assigned to ``PCG64.state`` in about a microsecond.
    """
    digest = hashlib.sha256(f"pcg64:{int(root)}:{name}".encode()).digest()
    return {
        "bit_generator": "PCG64",
        "state": {
            "state": int.from_bytes(digest[:16], "big"),
            "inc": int.from_bytes(digest[16:], "big") | 1,
        },
        "has_uint32": 0,
        "uinteger": 0,
    }


class RandomStreams:
    """A factory of named, reproducible :class:`numpy.random.Generator` objects."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The per-stream seed is derived by hashing ``(root seed, name)``, so
        streams are stable across runs and independent of creation order.
        """
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self._seed, name))
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory, e.g. one per repetition of an experiment."""
        return RandomStreams(derive_seed(self._seed, f"spawn:{name}"))
