"""Per-process clocks with offset and drift.

The round-synchronization protocol of the paper's Section 5.1 exists
precisely because WAN nodes do not share a clock.  To exercise it honestly,
every simulated process reads time through a :class:`Clock` that maps the
simulator's global time to a skewed, drifting local time.

The mapping is affine: ``local = offset + (1 + drift) * global``.  Drift is
expressed as a rate error (e.g. ``1e-5`` means the local clock gains 10
microseconds per second), which is the magnitude real quartz oscillators
exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Clock:
    """An affine local clock.

    Attributes:
        offset: local time at global time zero (seconds).
        drift: rate error; the local clock advances ``1 + drift`` local
            seconds per global second.  Must be greater than ``-1`` so the
            clock always moves forward.
    """

    offset: float = 0.0
    drift: float = 0.0

    def __post_init__(self) -> None:
        if self.drift <= -1.0:
            raise ValueError(f"drift {self.drift} would freeze or reverse the clock")

    def local_time(self, global_time: float) -> float:
        """Local reading at the given global simulation time."""
        return self.offset + (1.0 + self.drift) * global_time

    def global_time(self, local_time: float) -> float:
        """Inverse mapping: global instant at which the clock reads ``local_time``."""
        return (local_time - self.offset) / (1.0 + self.drift)

    def local_duration(self, global_duration: float) -> float:
        """How long ``global_duration`` appears to last on this clock."""
        return (1.0 + self.drift) * global_duration

    def global_duration(self, local_duration: float) -> float:
        """How much global time passes while this clock advances ``local_duration``."""
        return local_duration / (1.0 + self.drift)


#: A clock with no skew and no drift — local time equals global time.
PerfectClock = Clock(offset=0.0, drift=0.0)
