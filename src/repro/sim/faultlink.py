"""Fault-aware wrapper around any :class:`~repro.sim.transport.LinkModel`.

The transport stays oblivious to fault scenarios: it samples latencies
from whatever link model is installed.  :class:`FaultyLinkModel` slots
between the transport and the real network model and consults a
:class:`LinkFaults` policy per message — drop it, or stretch its latency
— which is how loss bursts, partitions and slow-node episodes reach the
event-driven stack (the policy for a declarative
:class:`~repro.faults.plan.FaultPlan` is
:class:`repro.faults.event.PlanLinkFaults`).

The wrapper lives in ``sim/`` because it is substrate, not policy: it
knows nothing about rounds or plans, only "maybe drop, maybe slow".
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.sim.transport import LinkModel


class LinkFaults(Protocol):
    """Per-message fault decisions for a :class:`FaultyLinkModel`."""

    def drop(self, src: int, dst: int, now: float) -> bool:
        """Kill the message outright?"""
        ...

    def latency_factor(self, src: int, dst: int, now: float) -> float:
        """Multiplier applied to the sampled latency (1.0 = untouched)."""
        ...


class FaultyLinkModel:
    """A :class:`LinkModel` filtered through a :class:`LinkFaults` policy.

    After each ``sample_latency`` that returned ``None``,
    ``last_drop_cause`` names why — the fault policy's own cause if it
    publishes one (:class:`~repro.faults.event.PlanLinkFaults` does), a
    generic ``"fault"`` otherwise, or ``None`` when the base model itself
    lost the message (natural link loss).  The transport reads this side
    channel to attribute drops.

    When the wrapped ``base`` is itself streamable, the transport does
    not call :meth:`sample_latency` at all: it streams the base's
    per-link substreams directly and consults ``faults`` per message
    (see :class:`~repro.sim.transport.Transport`).  On that path every
    message consumes one base draw even if dropped, unlike the scalar
    path below, which skips the base sample for dropped messages.
    """

    def __init__(self, base: LinkModel, faults: LinkFaults) -> None:
        self.base = base
        self.faults = faults
        self.last_drop_cause: Optional[str] = None

    def sample_latency(self, src: int, dst: int, now: float) -> Optional[float]:
        self.last_drop_cause = None
        if self.faults.drop(src, dst, now):
            self.last_drop_cause = (
                getattr(self.faults, "last_drop_cause", None) or "fault"
            )
            return None
        latency = self.base.sample_latency(src, dst, now)
        if latency is None:
            return None
        factor = self.faults.latency_factor(src, dst, now)
        return latency if factor == 1.0 else latency * factor
