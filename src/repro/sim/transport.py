"""Point-to-point message transport over the event queue.

The transport models an unreliable, unordered datagram network (the paper's
experiments use UDP): each message independently receives a latency from the
installed link model, or is dropped.  Messages may therefore be reordered,
arbitrarily late, or lost — exactly the asynchronous-network assumptions of
the paper's Section 2 — while the *timing model* properties emerge from the
statistics of the link model, not from the transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol

from repro.obs.recorder import RunRecorder, recorder_or_null
from repro.obs.registry import Counter, MetricsRegistry, registry_or_null
from repro.sim.events import Simulator


class LinkModel(Protocol):
    """Samples per-message latency; ``None`` means the message is lost."""

    def sample_latency(self, src: int, dst: int, now: float) -> Optional[float]:
        """Latency in seconds for a message from ``src`` to ``dst`` sent at ``now``."""
        ...


@dataclass
class Delivery:
    """Record of one message delivery (or drop), kept when tracing is on.

    ``undeliverable`` marks messages that arrived at a destination that
    never registered a receive handler; they count as lost.
    """

    src: int
    dst: int
    sent_at: float
    latency: Optional[float]
    payload: Any = field(repr=False, default=None)
    undeliverable: bool = False

    @property
    def lost(self) -> bool:
        return self.latency is None or self.undeliverable

    @property
    def delivered_at(self) -> Optional[float]:
        if self.latency is None:
            return None
        return self.sent_at + self.latency


class Transport:
    """Delivers payloads between numbered nodes through a :class:`LinkModel`.

    Nodes call :meth:`register` once with their receive callback, then
    :meth:`send`.  Local (self-addressed) messages are delivered with zero
    latency and never lost, mirroring the paper's convention that a
    process's link with itself is always timely.
    """

    def __init__(
        self,
        simulator: Simulator,
        link_model: LinkModel,
        trace: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        recorder: Optional[RunRecorder] = None,
    ) -> None:
        self._simulator = simulator
        self._link_model = link_model
        self._handlers: dict[int, Callable[[int, Any], None]] = {}
        self._trace = trace
        self.deliveries: list[Delivery] = []
        self.messages_sent = 0
        self.messages_lost = 0
        self._metrics = registry_or_null(metrics)
        self._recorder = recorder_or_null(recorder)
        self._sent_counter = self._metrics.counter("transport.sent")
        self._delivered_counter = self._metrics.counter("transport.delivered")
        self._latency_hist = self._metrics.histogram("transport.latency_seconds")
        self._drop_counters: dict[str, Counter] = {}

    def _count_drop(self, cause: str, src: int, dst: int, now: float) -> None:
        counter = self._drop_counters.get(cause)
        if counter is None:
            counter = self._metrics.counter("transport.dropped", cause=cause)
            self._drop_counters[cause] = counter
        counter.inc()
        self._recorder.record("transport.drop", t=now, src=src, dst=dst, cause=cause)

    @property
    def link_model(self) -> LinkModel:
        """The installed link model.  Assignable: fault injectors wrap the
        current model (e.g. with :class:`repro.sim.faultlink.FaultyLinkModel`)
        and install the wrapper without rebuilding the transport."""
        return self._link_model

    @link_model.setter
    def link_model(self, model: LinkModel) -> None:
        self._link_model = model

    def register(self, node: int, handler: Callable[[int, Any], None]) -> None:
        """Install ``handler(src, payload)`` as the receive callback of ``node``."""
        if node in self._handlers:
            raise ValueError(f"node {node} already registered")
        self._handlers[node] = handler

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Send ``payload`` from ``src`` to ``dst``; it may be delayed or lost."""
        now = self._simulator.now
        self.messages_sent += 1
        self._sent_counter.inc()
        if src == dst:
            latency: Optional[float] = 0.0
        else:
            latency = self._link_model.sample_latency(src, dst, now)
        record: Optional[Delivery] = None
        if self._trace:
            record = Delivery(
                src=src, dst=dst, sent_at=now, latency=latency, payload=payload
            )
            self.deliveries.append(record)
        if latency is None:
            self.messages_lost += 1
            # Fault-aware link models (FaultyLinkModel) publish why the last
            # sample was dropped; a bare link model's loss is natural "link"
            # loss.
            cause = getattr(self._link_model, "last_drop_cause", None) or "link"
            self._count_drop(cause, src, dst, now)
            return
        self._latency_hist.observe(latency)

        def deliver() -> None:
            handler = self._handlers.get(dst)
            if handler is None:
                # A destination that never registered cannot receive: the
                # message is lost, and must be counted as such or loss
                # statistics under-report.
                self.messages_lost += 1
                self._count_drop("unregistered", src, dst, self._simulator.now)
                if record is not None:
                    record.undeliverable = True
                return
            self._delivered_counter.inc()
            handler(src, payload)

        self._simulator.schedule_in(latency, deliver, tag=f"deliver:{src}->{dst}")

    def broadcast(self, src: int, destinations: list[int], payload: Any) -> None:
        """Send ``payload`` to each destination (independent loss/latency)."""
        for dst in destinations:
            self.send(src, dst, payload)
