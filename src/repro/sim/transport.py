"""Point-to-point message transport over the event queue.

The transport models an unreliable, unordered datagram network (the paper's
experiments use UDP): each message independently receives a latency from the
installed link model, or is dropped.  Messages may therefore be reordered,
arbitrarily late, or lost — exactly the asynchronous-network assumptions of
the paper's Section 2 — while the *timing model* properties emerge from the
statistics of the link model, not from the transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol

import numpy as np

from repro.obs.recorder import RunRecorder, recorder_or_null
from repro.obs.registry import Counter, MetricsRegistry, registry_or_null
from repro.sim.events import Simulator


class LinkModel(Protocol):
    """Samples per-message latency; ``None`` means the message is lost."""

    def sample_latency(self, src: int, dst: int, now: float) -> Optional[float]:
        """Latency in seconds for a message from ``src`` to ``dst`` sent at ``now``."""
        ...


@dataclass
class Delivery:
    """Record of one message delivery (or drop), kept when tracing is on.

    ``undeliverable`` marks messages that arrived at a destination that
    never registered a receive handler; they count as lost.
    """

    src: int
    dst: int
    sent_at: float
    latency: Optional[float]
    payload: Any = field(repr=False, default=None)
    undeliverable: bool = False

    @property
    def lost(self) -> bool:
        return self.latency is None or self.undeliverable

    @property
    def delivered_at(self) -> Optional[float]:
        if self.latency is None:
            return None
        return self.sent_at + self.latency


#: How many latencies a pre-sampled link stream draws per refill.
STREAM_CHUNK = 256


class Transport:
    """Delivers payloads between numbered nodes through a :class:`LinkModel`.

    Nodes call :meth:`register` once with their receive callback, then
    :meth:`send`.  Local (self-addressed) messages are delivered with zero
    latency and never lost, mirroring the paper's convention that a
    process's link with itself is always timely.

    When the installed link model is batch-capable *and* time-invariant
    (no slow windows or load spikes — e.g. a clean
    :class:`~repro.net.hetero.HeterogeneousNetwork` or the Bernoulli
    model), :meth:`send` consumes pre-sampled per-link latency streams:
    each directed link draws :data:`STREAM_CHUNK` latencies at a time
    from its own RNG substream
    (:meth:`~repro.net.base.LatencyModel.link_stream`), so a link's
    latency sequence is independent of global send interleaving.  Dynamic
    models (a :class:`~repro.net.planetlab.PlanetLabProfile` in a
    slow-Poland run) fall back to scalar ``sample_latency`` —
    time-dependent behaviour cannot be pre-sampled.

    A fault wrapper (anything exposing ``base``/``faults`` attributes,
    like :class:`~repro.sim.faultlink.FaultyLinkModel`) around a
    streamable base keeps the stream path: the *base* model is streamed
    and the fault policy is consulted per message on top.  On this path
    every message consumes exactly one base draw from its link's
    substream — including messages the policy then drops — so the ``i``-th
    message a link carries always sees the link's ``i``-th pre-sampled
    latency, whatever the faults do.  (The scalar wrapper skips the base
    draw for dropped messages; the stream path deliberately does not,
    which is what lets :mod:`repro.sync.batch` pre-sample whole fault
    windows.)  Wrappers around non-streamable bases still fall back.

    With ``trace=True`` every delivery is recorded; payload *objects* are
    only retained when ``trace_payloads=True``, so long robustness runs
    tracing millions of messages keep metadata without pinning every
    payload in memory forever.
    """

    def __init__(
        self,
        simulator: Simulator,
        link_model: LinkModel,
        trace: bool = False,
        trace_payloads: bool = False,
        batch_streams: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        recorder: Optional[RunRecorder] = None,
    ) -> None:
        self._simulator = simulator
        self._link_model = link_model
        self._handlers: dict[int, Callable[[int, Any], None]] = {}
        self._trace = trace
        self._trace_payloads = trace_payloads
        self._batch_streams = batch_streams
        self._streams: dict[tuple[int, int], tuple] = {}
        self._configure_streams(link_model)
        self.deliveries: list[Delivery] = []
        self.messages_sent = 0
        self.messages_lost = 0
        self._metrics = registry_or_null(metrics)
        self._recorder = recorder_or_null(recorder)
        self._sent_counter = self._metrics.counter("transport.sent")
        self._delivered_counter = self._metrics.counter("transport.delivered")
        self._latency_hist = self._metrics.histogram("transport.latency_seconds")
        self._drop_counters: dict[str, Counter] = {}

    @staticmethod
    def _model_streamable(model: LinkModel) -> bool:
        """Can per-link latency streams be pre-sampled from ``model``?"""
        return bool(
            getattr(model, "supports_batch_trace", False)
            and getattr(model, "is_time_invariant", False)
        )

    def _configure_streams(self, model: LinkModel) -> None:
        """Resolve which model feeds the stream path, and through what.

        Three outcomes: a streamable model streams directly (no fault
        policy); a fault wrapper exposing ``base``/``faults`` whose base
        is streamable streams the base and applies the policy per
        message; anything else disables the stream path.
        """
        if self._model_streamable(model):
            self._stream_base: Optional[LinkModel] = model
            self._stream_faults = None
            self._streams_usable = True
            return
        base = getattr(model, "base", None)
        faults = getattr(model, "faults", None)
        if base is not None and faults is not None and self._model_streamable(base):
            self._stream_base = base
            self._stream_faults = faults
            self._streams_usable = True
            return
        self._stream_base = None
        self._stream_faults = None
        self._streams_usable = False

    def _count_drop(self, cause: str, src: int, dst: int, now: float) -> None:
        counter = self._drop_counters.get(cause)
        if counter is None:
            counter = self._metrics.counter("transport.dropped", cause=cause)
            self._drop_counters[cause] = counter
        counter.inc()
        self._recorder.record("transport.drop", t=now, src=src, dst=dst, cause=cause)

    @property
    def trace_enabled(self) -> bool:
        """Whether every delivery is being recorded into :attr:`deliveries`."""
        return self._trace

    @property
    def instrumented(self) -> bool:
        """Whether a live metrics registry or recorder observes this transport."""
        return self._metrics.enabled or self._recorder.enabled

    @property
    def recorder_enabled(self) -> bool:
        """Whether a live per-event recorder observes this transport."""
        return self._recorder.enabled

    @property
    def stream_sampling_active(self) -> bool:
        """Whether sends currently consume pre-sampled per-link streams.

        True iff stream consumption is enabled *and* the installed model
        (or a fault wrapper's base) is batch-capable and time-invariant;
        batched executors (:mod:`repro.sync.batch`) require it, since
        only then do the scalar and batched paths draw bit-identical
        latency sequences.
        """
        return self._batch_streams and self._streams_usable

    @property
    def stream_fault_policy(self) -> Optional[Any]:
        """The per-message fault policy riding on the stream path, if any."""
        return self._stream_faults

    @property
    def streams_started(self) -> bool:
        """Whether any per-link stream has already been consumed from."""
        return bool(self._streams)

    @property
    def link_model(self) -> LinkModel:
        """The installed link model.  Assignable: fault injectors wrap the
        current model (e.g. with :class:`repro.sim.faultlink.FaultyLinkModel`)
        and install the wrapper without rebuilding the transport."""
        return self._link_model

    @link_model.setter
    def link_model(self, model: LinkModel) -> None:
        self._link_model = model
        # A new model invalidates pre-sampled streams.  A fault wrapper
        # around a streamable base keeps the stream path (the base is
        # streamed, the policy applied per message); anything else flips
        # the transport onto the scalar fallback path.
        self._streams.clear()
        self._configure_streams(model)

    def reset_link_streams(self) -> None:
        """Discard pre-sampled per-link latencies (e.g. after a model
        ``reseed``); the next send per link re-derives its substream."""
        self._streams.clear()
        self._configure_streams(self._link_model)

    def _next_stream_latency(self, src: int, dst: int) -> Optional[float]:
        """Pop the next pre-sampled latency of the link ``src → dst``."""
        key = (src, dst)
        model = self._stream_base
        state = self._streams.get(key)
        if state is None:
            state = [model.link_stream(src, dst), np.empty(0), 0]
            self._streams[key] = state
        rng, chunk, cursor = state
        if cursor >= chunk.shape[0]:
            # Time-invariant models ignore send times; any placeholder
            # vector of the right length works.
            chunk = model.sample_link_batch(
                src, dst, np.zeros(STREAM_CHUNK), rng
            )
            cursor = 0
            state[1] = chunk
        value = chunk[cursor]
        state[2] = cursor + 1
        return None if np.isinf(value) else float(value)

    def register(self, node: int, handler: Callable[[int, Any], None]) -> None:
        """Install ``handler(src, payload)`` as the receive callback of ``node``."""
        if node in self._handlers:
            raise ValueError(f"node {node} already registered")
        self._handlers[node] = handler

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Send ``payload`` from ``src`` to ``dst``; it may be delayed or lost."""
        now = self._simulator.now
        self.messages_sent += 1
        self._sent_counter.inc()
        cause: Optional[str] = None
        if src == dst:
            latency: Optional[float] = 0.0
        elif self._batch_streams and self._streams_usable:
            # One base draw per message, unconditionally — the fault
            # policy decides on top, without perturbing the substream.
            latency = self._next_stream_latency(src, dst)
            faults = self._stream_faults
            if faults is not None:
                if faults.drop(src, dst, now):
                    latency = None
                    cause = getattr(faults, "last_drop_cause", None) or "fault"
                elif latency is not None:
                    factor = faults.latency_factor(src, dst, now)
                    if factor != 1.0:
                        latency = latency * factor
        else:
            latency = self._link_model.sample_latency(src, dst, now)
            if latency is None:
                # Fault-aware link models (FaultyLinkModel) publish why
                # the last sample was dropped; a bare link model's loss
                # is natural "link" loss.
                cause = getattr(self._link_model, "last_drop_cause", None)
        record: Optional[Delivery] = None
        if self._trace:
            record = Delivery(
                src=src,
                dst=dst,
                sent_at=now,
                latency=latency,
                payload=payload if self._trace_payloads else None,
            )
            self.deliveries.append(record)
        if latency is None:
            self.messages_lost += 1
            self._count_drop(cause or "link", src, dst, now)
            return
        self._latency_hist.observe(latency)

        def deliver() -> None:
            handler = self._handlers.get(dst)
            if handler is None:
                # A destination that never registered cannot receive: the
                # message is lost, and must be counted as such or loss
                # statistics under-report.
                self.messages_lost += 1
                self._count_drop("unregistered", src, dst, self._simulator.now)
                if record is not None:
                    record.undeliverable = True
                return
            self._delivered_counter.inc()
            handler(src, payload)

        self._simulator.schedule_in(latency, deliver, tag=f"deliver:{src}->{dst}")

    def broadcast(self, src: int, destinations: list[int], payload: Any) -> None:
        """Send ``payload`` to each destination (independent loss/latency)."""
        for dst in destinations:
            self.send(src, dst, payload)
