"""Round-based single-decree Paxos — the prior-art baseline for ◊WLM.

Paxos [21] makes progress under ◊WLM's guarantees (the leader exchanges
messages with a majority and reaches everyone), but — as Dutta, Guerraoui &
Keidar observe [13] — it can need a *linear* number of rounds after GSR:
the leader insists on discovering the highest ballot in the system before
committing, and each newly surfaced higher ballot aborts the current
attempt.  The paper's Algorithm 2 exists precisely to avoid this; the
benchmark ``test_paxos_linear_recovery`` reproduces the contrast.

The implementation maps classic Paxos onto GIRAF rounds with *state-based*
acceptor replies: every process broadcasts its acceptor state
``(promised, vrnd, vval)`` each round; the leader reads a reply as a
phase-1 promise iff ``promised`` equals its ballot, and as a phase-2 accept
iff ``vrnd`` equals its ballot.  A reply with a higher ``promised`` acts as
a NACK and aborts the attempt.  Ballots are made proposer-unique by the
usual ``t * n + pid`` construction.

Message pattern: non-leaders send only to their Ω leader; the leader sends
to everyone — linear per round, like Algorithm 2, so the comparison
isolates the *recovery* behaviour rather than message complexity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, FrozenSet, Optional

from repro.consensus.base import ConsensusAlgorithm
from repro.giraf.kernel import Inbox, RoundOutput


class PaxosCmd(enum.IntEnum):
    """Leader-to-acceptors command carried in a round message."""

    NONE = 0
    P1A = 1
    P2A = 2
    DECIDE = 3


@dataclass(frozen=True)
class PaxosMessage:
    """One process's round message: acceptor state plus optional command.

    Attributes:
        promised: highest ballot this acceptor has promised (``rnd``).
        vrnd: ballot of the last accepted value (0 = none).
        vval: the last accepted value.
        cmd: leader command, if the sender is acting as a proposer.
        cmd_ballot: ballot of the command.
        cmd_value: value of a P2A or DECIDE command.
    """

    promised: int
    vrnd: int
    vval: Any
    cmd: PaxosCmd = PaxosCmd.NONE
    cmd_ballot: int = 0
    cmd_value: Any = None


class PaxosConsensus(ConsensusAlgorithm):
    """Single-decree Paxos in GIRAF; correct in ◊WLM, O(n) recovery worst case."""

    def __init__(self, pid: int, n: int, proposal: Any) -> None:
        super().__init__(pid, n, proposal)
        # Acceptor state.
        self.promised = 0
        self.vrnd = 0
        self.vval: Any = None
        # Proposer state.
        self.cballot: Optional[int] = None
        self.phase = 0  # 0 = idle, 1 = collecting promises, 2 = collecting accepts
        self.cvalue: Any = None
        self.restarts = 0  # number of aborted ballots (instrumentation)
        self._pending_cmd = PaxosCmd.NONE
        self._leader: Optional[int] = None

    # ------------------------------------------------------------------
    # Ballot arithmetic: ballots of process i are { t*n + i : t >= 1 }.
    # ------------------------------------------------------------------
    def _next_ballot(self, above: int) -> int:
        t = max(above // self.n, 0) + 1
        while t * self.n + self.pid <= above:
            t += 1
        return t * self.n + self.pid

    def _destinations(self, leader: int) -> FrozenSet[int]:
        if leader == self.pid:
            return frozenset(range(self.n))
        return frozenset({leader})

    def _message(self) -> PaxosMessage:
        cmd = self._pending_cmd
        if self._decision is not None:
            return PaxosMessage(
                promised=self.promised,
                vrnd=self.vrnd,
                vval=self.vval,
                cmd=PaxosCmd.DECIDE,
                cmd_ballot=self.cballot or 0,
                cmd_value=self._decision,
            )
        return PaxosMessage(
            promised=self.promised,
            vrnd=self.vrnd,
            vval=self.vval,
            cmd=cmd,
            cmd_ballot=self.cballot or 0,
            cmd_value=self.cvalue if cmd == PaxosCmd.P2A else None,
        )

    def initialize(self, oracle_output: Any) -> RoundOutput:
        leader = int(oracle_output)
        self._leader = leader
        if leader == self.pid:
            self.cballot = self._next_ballot(0)
            self.phase = 1
            self._pending_cmd = PaxosCmd.P1A
        return RoundOutput(self._message(), self._destinations(leader))

    def compute(self, round_number: int, inbox: Inbox, oracle_output: Any) -> RoundOutput:
        leader = int(oracle_output)
        messages: dict[int, PaxosMessage] = dict(inbox.round(round_number))

        if self._decision is None:
            self._acceptor_step(messages, round_number)
        if self._decision is None:
            self._proposer_step(messages, leader, round_number)
        self._leader = leader
        return RoundOutput(self._message(), self._destinations(leader))

    # ------------------------------------------------------------------
    # Acceptor: obey commands in ballot order.
    # ------------------------------------------------------------------
    def _acceptor_step(
        self, messages: dict[int, PaxosMessage], round_number: int
    ) -> None:
        commands = sorted(
            (m for m in messages.values() if m.cmd != PaxosCmd.NONE),
            key=lambda m: (m.cmd_ballot, m.cmd),
        )
        for m in commands:
            if m.cmd == PaxosCmd.P1A:
                if m.cmd_ballot > self.promised:
                    self.promised = m.cmd_ballot
            elif m.cmd == PaxosCmd.P2A:
                if m.cmd_ballot >= self.promised:
                    self.promised = m.cmd_ballot
                    self.vrnd = m.cmd_ballot
                    self.vval = m.cmd_value
            elif m.cmd == PaxosCmd.DECIDE:
                self._decide(m.cmd_value, round_number)
                return

    # ------------------------------------------------------------------
    # Proposer: run phases, restart on higher ballots.
    # ------------------------------------------------------------------
    def _proposer_step(
        self, messages: dict[int, PaxosMessage], leader: int, round_number: int
    ) -> None:
        if leader != self.pid:
            # Demoted: stop proposing, keep acceptor state.
            self._pending_cmd = PaxosCmd.NONE
            self.phase = 0
            return

        highest_seen = max(
            [m.promised for m in messages.values()]
            + [m.cmd_ballot for m in messages.values()]
            + [self.promised]
        )

        if self.cballot is None or self.phase == 0:
            self.cballot = self._next_ballot(highest_seen)
            self.phase = 1
            self._pending_cmd = PaxosCmd.P1A
            return

        if self.phase == 1:
            promises = [m for m in messages.values() if m.promised == self.cballot]
            if len(promises) > self.n // 2:
                accepted = [m for m in promises if m.vrnd > 0]
                if accepted:
                    best = max(accepted, key=lambda m: m.vrnd)
                    self.cvalue = best.vval
                else:
                    self.cvalue = self.proposal
                self.phase = 2
                self._pending_cmd = PaxosCmd.P2A
            elif highest_seen > self.cballot:
                # A higher ballot exists: abort and chase it — the Paxos
                # behaviour that costs O(n) rounds after GSR in ◊WLM [13].
                self.restarts += 1
                self.cballot = self._next_ballot(highest_seen)
                self.phase = 1
                self._pending_cmd = PaxosCmd.P1A
            # else: keep re-broadcasting P1A until a majority answers.
            return

        if self.phase == 2:
            accepts = sum(1 for m in messages.values() if m.vrnd == self.cballot)
            if accepts > self.n // 2:
                self._decide(self.cvalue, round_number)
                self._pending_cmd = PaxosCmd.DECIDE
            elif highest_seen > self.cballot:
                self.restarts += 1
                self.cballot = self._next_ballot(highest_seen)
                self.phase = 1
                self._pending_cmd = PaxosCmd.P1A
            # else: keep re-broadcasting P2A.
