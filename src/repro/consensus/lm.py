"""The 3-round consensus algorithm for the eventual-LM model.

Reconstruction of the optimal ◊LM algorithm of Keidar & Shraer [19] (the
original paper gives only its existence and round count).  It reuses
Algorithm 2's commit machinery — timestamps equal to round numbers and the
leader's ``majApproved`` flag — but sends all-to-all (``Θ(n²)`` messages
per round) and exploits ◊LM's stronger guarantee that *every* correct
process hears from a majority each stable round:

- **commit** exactly as in Algorithm 2: adopt the estimate of a
  majority-approved leader, with the current round as timestamp.
- **decide** as soon as a majority of COMMIT messages (including one's
  own) arrives — no ``majApproved`` needed at the decider, because in ◊LM
  everyone, not just the leader, receives from a majority.  COMMIT
  messages of one round all carry the same round timestamp and (by the
  Lemma 3 argument) the same estimate, so the rule is unambiguous.

Round count from GSR, with a stable leader (the Section 4 setting — the
oracle's property already holds at round GSR-1): the leader turns
majApproved at the end of GSR, everyone commits at the end of GSR+1, and
everyone receives majority COMMITs and decides at the end of GSR+2 —
3 rounds.  Without the stable-leader head start it takes one round more,
mirroring Algorithm 2's 4-versus-5 distinction.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.consensus.base import (
    ConsensusAlgorithm,
    ConsensusMessage,
    MsgType,
    round_maximum,
)
from repro.giraf.kernel import Inbox, RoundOutput


class LmConsensus(ConsensusAlgorithm):
    """All-to-all leader-based consensus; 3 stable rounds in ◊LM."""

    def __init__(self, pid: int, n: int, proposal: Any) -> None:
        super().__init__(pid, n, proposal)
        self.est: Any = proposal
        self.ts: int = 0
        self.maj_approved: bool = False
        self.prev_leader: Optional[int] = None
        self.new_leader: Optional[int] = None
        self.msg_type: MsgType = MsgType.PREPARE
        self._all = frozenset(range(n))

    def _message(self) -> ConsensusMessage:
        return ConsensusMessage(
            msg_type=self.msg_type,
            est=self.est,
            ts=self.ts,
            leader=self.new_leader,
            maj_approved=self.maj_approved,
        )

    def initialize(self, oracle_output: Any) -> RoundOutput:
        leader = int(oracle_output)
        self.prev_leader = leader
        self.new_leader = leader
        return RoundOutput(self._message(), self._all)

    def compute(self, round_number: int, inbox: Inbox, oracle_output: Any) -> RoundOutput:
        leader = int(oracle_output)
        if self._decision is None:
            messages: dict[int, ConsensusMessage] = dict(inbox.round(round_number))
            self.prev_leader = self.new_leader
            self.new_leader = leader
            max_ts, max_est = round_maximum(messages)
            self.maj_approved = (
                sum(1 for m in messages.values() if m.leader == self.pid)
                > self.n // 2
            )

            decide_msg = self._first_decide(messages)
            commit_count = sum(
                1 for m in messages.values() if m.msg_type == MsgType.COMMIT
            )
            own = messages.get(self.pid)
            leader_msg = (
                messages.get(self.prev_leader)
                if self.prev_leader is not None
                else None
            )
            if decide_msg is not None:
                self.est = decide_msg.est
                self._decide(self.est, round_number)
                self.msg_type = MsgType.DECIDE
            elif (
                commit_count > self.n // 2
                and own is not None
                and own.msg_type == MsgType.COMMIT
            ):
                # All COMMITs of one round share the timestamp (the round
                # they were produced in) and, by majority intersection of
                # their leaders' approvals, the estimate — decide on ours.
                self._decide(self.est, round_number)
                self.msg_type = MsgType.DECIDE
            elif leader_msg is not None and leader_msg.maj_approved:
                self.est = leader_msg.est
                self.ts = round_number
                self.msg_type = MsgType.COMMIT
            else:
                self.ts = max_ts
                self.est = max_est
                self.msg_type = MsgType.PREPARE

        return RoundOutput(self._message(), self._all)

    @staticmethod
    def _first_decide(
        messages: dict[int, ConsensusMessage]
    ) -> Optional[ConsensusMessage]:
        for sender in sorted(messages):
            if messages[sender].msg_type == MsgType.DECIDE:
                return messages[sender]
        return None
