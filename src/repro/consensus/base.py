"""Shared machinery of the indulgent consensus algorithms.

The message format is the paper's 5-tuple
``(msgType, est, ts, leader, majApproved)`` (Algorithm 2, line 8); the
baseline algorithms reuse it, leaving fields they do not need at their
defaults.  ``Values`` is any totally ordered set — the algorithms rely on
the order when several estimates share the maximal timestamp.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple

from repro.giraf.kernel import GirafAlgorithm


class MsgType(enum.IntEnum):
    """The three message types of Algorithm 2.

    A process sends COMMIT when it sees a possibility of decision in the
    next few rounds, DECIDE forever once it has decided, and PREPARE
    otherwise.
    """

    PREPARE = 0
    COMMIT = 1
    DECIDE = 2


@dataclass(frozen=True)
class ConsensusMessage:
    """One round's message.

    Attributes:
        msg_type: PREPARE / COMMIT / DECIDE.
        est: the sender's current estimate of the decision value.
        ts: the timestamp (ballot) attached to the estimate.
        leader: the process the sender's oracle indicated as leader when
            this message was produced (``None`` for leaderless algorithms).
        maj_approved: whether the sender received, in the round before this
            message was produced, messages from a majority of processes
            naming the sender as their leader.
    """

    msg_type: MsgType
    est: Any
    ts: int
    leader: Optional[int] = None
    maj_approved: bool = False

    def __post_init__(self) -> None:
        if self.ts < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.ts}")


def round_maximum(messages: Mapping[int, ConsensusMessage]) -> Tuple[int, Any]:
    """The paper's ``(maxTS, maxEST)`` update (Algorithm 2, lines 19-20).

    ``maxTS`` is the largest timestamp among this round's messages and
    ``maxEST`` the largest estimate carried with that timestamp (``Values``
    is totally ordered, so the maximum is well defined).
    """
    if not messages:
        raise ValueError("round_maximum needs at least one message")
    max_ts = max(m.ts for m in messages.values())
    max_est = max(m.est for m in messages.values() if m.ts == max_ts)
    return max_ts, max_est


class ConsensusAlgorithm(GirafAlgorithm):
    """Base class for the consensus algorithms.

    Concrete algorithms implement ``initialize``/``compute``; this base
    holds the consensus-problem state: the read-only proposal ``prop_i``
    and the write-once decision ``dec_i``.
    """

    def __init__(self, pid: int, n: int, proposal: Any) -> None:
        if n < 2:
            raise ValueError("consensus needs at least 2 processes")
        if not 0 <= pid < n:
            raise ValueError(f"pid {pid} out of range for n={n}")
        self.pid = pid
        self.n = n
        self.proposal = proposal
        self._decision: Any = None
        self.decided_in_round: Optional[int] = None

    @property
    def majority(self) -> int:
        """The majority threshold ``floor(n/2) + 1``."""
        return self.n // 2 + 1

    def decision(self) -> Any:
        """The decided value, or ``None`` while undecided."""
        return self._decision

    def _decide(self, value: Any, round_number: int) -> None:
        """Write the write-once decision variable."""
        if self._decision is not None:
            if self._decision != value:
                raise AssertionError(
                    f"process {self.pid} attempted to overwrite decision "
                    f"{self._decision!r} with {value!r}"
                )
            return
        self._decision = value
        self.decided_in_round = round_number
