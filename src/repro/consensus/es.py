"""The 3-round consensus algorithm for Eventual Synchrony.

Reconstruction of the optimal indulgent ES algorithm of Dutta, Guerraoui &
Keidar [14] (round count only is given in the paper).  ES provides no
failure detector, so the coordinator is *derived from synchrony itself*:
at each end-of-round a process trusts the lowest-id process it heard from
in that round.  Once all links between correct processes are timely, all
correct processes hear the same sender set and hence trust the same
coordinator — a "virtual Ω" that costs no extra rounds.

The commit/decide rules are the shared ones (see :mod:`lm`): a coordinator
commits others only with a majority-approved message, deciders need a
majority of COMMITs including their own.  Safety therefore never depends
on the coordinator choice being consistent; only liveness does.

Round count from GSR: 3 rounds when the coordinator was already consistent
in the round before GSR (failure-free runs — the common case Section 4
analyzes, since all correct processes hear ``p_0``); one extra round when
GSR also changes the coordinator.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.consensus.base import (
    ConsensusAlgorithm,
    ConsensusMessage,
    MsgType,
    round_maximum,
)
from repro.giraf.kernel import Inbox, RoundOutput


class EsConsensus(ConsensusAlgorithm):
    """All-to-all consensus with a synchrony-derived coordinator; 3 stable
    rounds in ES."""

    def __init__(self, pid: int, n: int, proposal: Any) -> None:
        super().__init__(pid, n, proposal)
        self.est: Any = proposal
        self.ts: int = 0
        self.maj_approved: bool = False
        self.prev_leader: int = pid if pid == 0 else 0
        self.new_leader: int = 0  # everyone initially trusts p_0
        self.msg_type: MsgType = MsgType.PREPARE
        self._all = frozenset(range(n))

    def _message(self) -> ConsensusMessage:
        return ConsensusMessage(
            msg_type=self.msg_type,
            est=self.est,
            ts=self.ts,
            leader=self.new_leader,
            maj_approved=self.maj_approved,
        )

    def initialize(self, oracle_output: Any) -> RoundOutput:
        # ES has no oracle; the initial coordinator is p_0 by convention.
        self.prev_leader = 0
        self.new_leader = 0
        return RoundOutput(self._message(), self._all)

    def compute(self, round_number: int, inbox: Inbox, oracle_output: Any) -> RoundOutput:
        if self._decision is None:
            messages: dict[int, ConsensusMessage] = dict(inbox.round(round_number))
            self.prev_leader = self.new_leader
            # Synchrony-derived coordinator: the lowest-id sender heard
            # this round (always defined — own message is present).
            self.new_leader = min(messages)
            max_ts, max_est = round_maximum(messages)
            self.maj_approved = (
                sum(1 for m in messages.values() if m.leader == self.pid)
                > self.n // 2
            )

            decide_msg = self._first_decide(messages)
            commit_count = sum(
                1 for m in messages.values() if m.msg_type == MsgType.COMMIT
            )
            own = messages.get(self.pid)
            leader_msg = messages.get(self.prev_leader)
            if decide_msg is not None:
                self.est = decide_msg.est
                self._decide(self.est, round_number)
                self.msg_type = MsgType.DECIDE
            elif (
                commit_count > self.n // 2
                and own is not None
                and own.msg_type == MsgType.COMMIT
            ):
                self._decide(self.est, round_number)
                self.msg_type = MsgType.DECIDE
            elif leader_msg is not None and leader_msg.maj_approved:
                self.est = leader_msg.est
                self.ts = round_number
                self.msg_type = MsgType.COMMIT
            else:
                self.ts = max_ts
                self.est = max_est
                self.msg_type = MsgType.PREPARE

        return RoundOutput(self._message(), self._all)

    @staticmethod
    def _first_decide(
        messages: dict[int, ConsensusMessage]
    ) -> Optional[ConsensusMessage]:
        for sender in sorted(messages):
            if messages[sender].msg_type == MsgType.DECIDE:
                return messages[sender]
        return None
