"""Consensus algorithms for the four timing models.

All algorithms are GIRAF instantiations sharing the commit/decide machinery
of the paper's Algorithm 2 (timestamped estimates, majority-approved
leaders, PREPARE/COMMIT/DECIDE message types):

- :mod:`base` — the shared message format, the :class:`ConsensusAlgorithm`
  interface, and the common update helpers.
- :mod:`es` — 3-round algorithm for Eventual Synchrony (reconstruction of
  the optimal indulgent algorithm of [14]).
- :mod:`lm` — 3-round algorithm for eventual LM (reconstruction of [19]).
- :mod:`afm` — 5-round leaderless algorithm for eventual AFM
  (reconstruction of [19]).
- :mod:`paxos` — round-based Paxos: the prior protocol able to run in
  eventual WLM, exhibiting the O(n)-rounds-after-GSR recovery of [13].

The paper's own algorithm for eventual WLM lives in :mod:`repro.core.wlm`.
"""

from repro.consensus.base import (
    MsgType,
    ConsensusMessage,
    ConsensusAlgorithm,
    round_maximum,
)
from repro.consensus.es import EsConsensus
from repro.consensus.lm import LmConsensus
from repro.consensus.afm import AfmConsensus
from repro.consensus.paxos import PaxosConsensus

__all__ = [
    "MsgType",
    "ConsensusMessage",
    "ConsensusAlgorithm",
    "round_maximum",
    "EsConsensus",
    "LmConsensus",
    "AfmConsensus",
    "PaxosConsensus",
]
