"""The 5-round leaderless consensus algorithm for the eventual-AFM model.

Reconstruction of the ◊AFM algorithm of Keidar & Shraer [19] (the original
gives only its existence and round count).  ◊AFM has no oracle; during
stable rounds every correct process both reaches and hears from a majority,
and safety must hold without any leader to serialize commits.

The algorithm is built on *majority-unanimity commits*:

- Every round, every process sends ``(msgType, est, ts)`` to everyone and
  adopts the lexicographically maximal ``(ts, est)`` pair it receives.
- **commit**: if more than ``n/2`` of this round's messages carry the
  *identical* pair and that pair is the maximum received, commit it with
  the current round as the new timestamp.  Two same-round commits must
  agree: their supporting majorities intersect, and the witness in the
  intersection sent a single pair to both.
- **decide**: if more than ``n/2`` of this round's messages are COMMITs
  (necessarily sharing the same fresh pair), decide.  A decide therefore
  certifies a *majority* of same-pair commits, and any later commit's
  unanimous majority intersects that set — so later commits repeat the
  decided value (the Lemma 5 induction of the paper, adapted).

Round count from GSR in random stable schedules: the maximal pair reaches a
majority in one round and everyone in two (majorities intersect); the
third stable round is unanimous, so everyone commits; the fourth delivers
majority COMMITs, so everyone decides — GSR+3 typically, GSR+4 when a
straggler commit mid-stabilization restarts convergence once, matching the
paper's 5-round figure.  (A *fully adversarial* mobile-majority schedule
can delay commits further — a caveat of this reconstruction, documented in
DESIGN.md; the paper's own evaluation measures the model's 5-round
condition windows, which this repo reproduces independently of the
algorithm.)
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.consensus.base import ConsensusAlgorithm, ConsensusMessage, MsgType
from repro.giraf.kernel import Inbox, RoundOutput


class AfmConsensus(ConsensusAlgorithm):
    """Leaderless all-to-all consensus; 5 stable rounds in ◊AFM."""

    def __init__(self, pid: int, n: int, proposal: Any) -> None:
        super().__init__(pid, n, proposal)
        self.est: Any = proposal
        self.ts: int = 0
        self.msg_type: MsgType = MsgType.PREPARE
        self._all = frozenset(range(n))

    def _message(self) -> ConsensusMessage:
        return ConsensusMessage(
            msg_type=self.msg_type, est=self.est, ts=self.ts, leader=None
        )

    def initialize(self, oracle_output: Any) -> RoundOutput:
        return RoundOutput(self._message(), self._all)

    def compute(self, round_number: int, inbox: Inbox, oracle_output: Any) -> RoundOutput:
        if self._decision is None:
            messages: dict[int, ConsensusMessage] = dict(inbox.round(round_number))
            pairs: dict[int, Tuple[int, Any]] = {
                sender: (m.ts, m.est) for sender, m in messages.items()
            }
            max_pair = max(pairs.values())
            unanimity = sum(1 for pair in pairs.values() if pair == max_pair)
            commit_votes: dict[Tuple[int, Any], int] = {}
            for sender, m in messages.items():
                if m.msg_type == MsgType.COMMIT:
                    key = (m.ts, m.est)
                    commit_votes[key] = commit_votes.get(key, 0) + 1

            decide_msg = self._first_decide(messages)
            decided_pair = self._majority_commit(commit_votes)
            if decide_msg is not None:
                self.est = decide_msg.est
                self._decide(self.est, round_number)
                self.msg_type = MsgType.DECIDE
            elif decided_pair is not None:
                self.ts, self.est = decided_pair
                self._decide(self.est, round_number)
                self.msg_type = MsgType.DECIDE
            elif unanimity > self.n // 2:
                # Majority-unanimity commit on the maximal pair.
                self.est = max_pair[1]
                self.ts = round_number
                self.msg_type = MsgType.COMMIT
            else:
                self.ts, self.est = max_pair
                self.msg_type = MsgType.PREPARE

        return RoundOutput(self._message(), self._all)

    def _majority_commit(
        self, commit_votes: dict[Tuple[int, Any], int]
    ) -> Optional[Tuple[int, Any]]:
        """The pair carried by more than n/2 COMMITs this round, if any."""
        for pair, votes in commit_votes.items():
            if votes > self.n // 2:
                return pair
        return None

    @staticmethod
    def _first_decide(
        messages: dict[int, ConsensusMessage]
    ) -> Optional[ConsensusMessage]:
        for sender in sorted(messages):
            if messages[sender].msg_type == MsgType.DECIDE:
                return messages[sender]
        return None
