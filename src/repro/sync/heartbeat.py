"""The all-to-all probe algorithm of the measurement experiments.

The paper's LAN and WAN experiments do not run consensus directly: every
node sends a message to every other node each round, and the *conditions*
of each timing model are evaluated offline on the resulting delivery
matrices ("we measure the time and number of rounds until the appropriate
conditions for global decision are satisfied for each model").  This
algorithm is that probe stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.giraf.kernel import GirafAlgorithm, Inbox, RoundOutput


@dataclass(frozen=True)
class Probe:
    """A heartbeat payload: just the sender and the round it belongs to."""

    sender: int
    round_number: int


class HeartbeatAlgorithm(GirafAlgorithm):
    """Sends a probe to everyone each round; never decides."""

    def __init__(self, pid: int, n: int) -> None:
        self.pid = pid
        self.n = n
        self._all = frozenset(range(n))
        self.rounds_computed = 0

    def initialize(self, oracle_output: Any) -> RoundOutput:
        return RoundOutput(Probe(self.pid, 1), self._all)

    def compute(self, round_number: int, inbox: Inbox, oracle_output: Any) -> RoundOutput:
        self.rounds_computed += 1
        return RoundOutput(Probe(self.pid, round_number + 1), self._all)
