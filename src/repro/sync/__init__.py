"""The Section 5.1 round-synchronization protocol.

WAN nodes have no synchronized clocks, so GIRAF's rounds must be
synchronized by protocol.  The paper's implementation (reproduced here in
event-driven form over the simulator):

- average pairwise latencies ``L_i[j]`` are measured by pings before the
  run;
- each node starts a round by sending its messages, then waits ``timeout``
  on its local clock;
- a message belonging to a *future* round ``k_j`` ends the current round
  immediately: ``compute()`` is called, the node jumps straight into round
  ``k_j`` (using the message that triggered the jump), and shortens that
  round to ``timeout - L_i[j]`` to finish it together with the peers.

The paper found this achieves very fast synchronization and immediate
resynchronization after disruptions — properties the test-suite checks.

- :mod:`round_sync` — :class:`SyncedNode` and :class:`SyncRun`.
- :mod:`heartbeat` — the all-to-all probe algorithm used by measurement
  runs (each node sends to everyone each round, as in the paper's WAN
  experiment).
- :mod:`batch` — the batched structure-of-arrays execution of eligible
  heartbeat runs (``SyncRun.run`` picks it automatically).
"""

from repro.sync.round_sync import SyncedNode, SyncRun, SyncRunResult
from repro.sync.heartbeat import HeartbeatAlgorithm
from repro.sync.batch import batch_ineligible_reason, run_batched

__all__ = [
    "SyncedNode",
    "SyncRun",
    "SyncRunResult",
    "HeartbeatAlgorithm",
    "batch_ineligible_reason",
    "run_batched",
]
