"""Event-driven implementation of the round-synchronization protocol.

One :class:`SyncedNode` per process runs GIRAF over the simulated
transport.  The paper's two threads map onto event handlers:

- the *receive* path records every arriving message and, on a
  future-round message, notifies the round driver;
- the *round driver* starts each round by transmitting, waits out the
  (local-clock) timeout, then fires the end-of-round; on a future-round
  notification it ends the round early, jumps, and shortens the joined
  round by the expected latency ``L_i[src]``.

:class:`SyncRun` wires ``n`` nodes, staggered starts and skewed clocks
included, runs the simulator, and condenses the observations into
per-round delivery matrices comparable with the lockstep ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.faults.event import install_plan
from repro.faults.lockstep import ChurningOracle
from repro.faults.plan import FaultPlan
from repro.giraf.kernel import GirafAlgorithm
from repro.giraf.oracle import Oracle
from repro.giraf.process import GirafProcess
from repro.obs.recorder import RunRecorder, recorder_or_null
from repro.obs.registry import MetricsRegistry, registry_or_null
from repro.sim.clock import Clock
from repro.sim.events import Event, Simulator
from repro.sim.transport import Transport


@dataclass(frozen=True)
class _Wire:
    """What actually travels on the wire: the round number plus payload."""

    round_number: int
    payload: Any


#: Fraction of the timeout used as the floor of a shortened (joined) round,
#: so a latency estimate larger than the timeout cannot produce a
#: zero-length or negative round.
MIN_ROUND_FRACTION = 0.05


class SyncedNode:
    """One process running GIRAF under the Section 5.1 protocol."""

    def __init__(
        self,
        process: GirafProcess,
        oracle: Oracle,
        transport: Transport,
        simulator: Simulator,
        clock: Clock,
        timeout: float,
        latency_estimates: Sequence[float],
        start_time: float = 0.0,
        max_rounds: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        recorder: Optional[RunRecorder] = None,
        observers: Sequence[Any] = (),
    ) -> None:
        self.process = process
        self.oracle = oracle
        self.transport = transport
        self.simulator = simulator
        self.clock = clock
        self.timeout = timeout
        self.latency_estimates = list(latency_estimates)
        self.start_time = start_time
        self.max_rounds = max_rounds
        self._metrics = registry_or_null(metrics)
        self._recorder = recorder_or_null(recorder)
        self._rounds_started = self._metrics.counter("sync.rounds_started")
        self._rounds_jumped = self._metrics.counter("sync.rounds_jumped")
        self._rounds_shortened = self._metrics.counter("sync.rounds_shortened")
        self._timeout_fires = self._metrics.counter("sync.timeout_fires")
        self._late_counter = self._metrics.counter("sync.late_messages")
        self._timer: Optional[Event] = None
        self._observers = list(observers)
        self.running = False
        self.crashed = False
        self.crashed_permanently = False
        # Observations.
        self.timely_receipts: dict[int, set[int]] = {}
        self.round_starts: dict[int, float] = {}
        self.round_ends: dict[int, float] = {}
        self.late_messages = 0
        self.jumps = 0
        self.decision_round: Optional[int] = None

        transport.register(process.pid, self._on_receive)
        simulator.schedule(start_time, self._boot, tag=f"boot:{process.pid}")

    def _notify(self, hook: str, *args: Any) -> None:
        for observer in self._observers:
            method = getattr(observer, hook, None)
            if method is not None:
                method(*args)

    def _report_decision(self, round_number: int) -> None:
        decision = self.process.decision()
        if decision is None:
            return
        if self.decision_round is None:
            self.decision_round = round_number
        self._notify(
            "on_decision", self.process.pid, round_number, decision
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def _boot(self) -> None:
        self.running = True
        output = self.oracle.query(self.process.pid, 0)
        self._notify("on_oracle", self.process.pid, 0, output)
        self.process.end_of_round(output)
        self._report_decision(0)
        self._begin_round(self.timeout)

    def _begin_round(self, local_duration: float) -> None:
        k = self.process.round
        if self.max_rounds is not None and k > self.max_rounds:
            self.running = False
            return
        self.round_starts[k] = self.simulator.now
        self._rounds_started.inc()
        if local_duration < self.timeout:
            self._rounds_shortened.inc()
        self.timely_receipts.setdefault(k, set()).add(self.process.pid)
        payload = self.process.outgoing_payload
        if payload is not None:
            wire = _Wire(k, payload)
            for dst in sorted(self.process.send_targets()):
                self.transport.send(self.process.pid, dst, wire)
        duration = max(local_duration, MIN_ROUND_FRACTION * self.timeout)
        self._timer = self.simulator.schedule_in(
            self.clock.global_duration(duration),
            self._on_timer,
            tag=f"round-end:{self.process.pid}:{k}",
        )

    def _end_round(self, next_round: Optional[int] = None) -> None:
        k = self.process.round
        self.round_ends[k] = self.simulator.now
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        # Heartbeat-style detectors (HeartbeatOmega) take each node's
        # round observation live, the moment the round ends — the event
        # stack's answer to the lockstep runner's per-round ``observe``
        # matrix.  The row is this node's local view only; detectors
        # exposing the seam are row-local by contract.
        observe_row = getattr(self.oracle, "observe_row", None)
        if observe_row is not None:
            row = np.zeros(len(self.latency_estimates), dtype=bool)
            row[list(self.timely_receipts.get(k, ()))] = True
            observe_row(self.process.pid, k, row)
        output = self.oracle.query(self.process.pid, k)
        self._notify("on_oracle", self.process.pid, k, output)
        self.process.end_of_round(output, next_round=next_round)
        self._report_decision(k)

    def _on_timer(self) -> None:
        if not self.running or self.crashed:
            return
        self._timer = None
        self._timeout_fires.inc()
        self._end_round()
        self._begin_round(self.timeout)

    # ------------------------------------------------------------------
    # Fault hooks (driven by :class:`SyncRun` from a ``FaultPlan``).
    # ------------------------------------------------------------------
    def crash(self, permanent: bool = False) -> None:
        """Freeze the node: no sends, receives, timers, or computation.

        A permanent crash also ends the node's run; a transient one keeps
        its state for :meth:`recover` (crash-recovery with stable storage).
        """
        if not self.running:
            return
        self.crashed = True
        if permanent:
            self.crashed_permanently = True
            self.running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def recover(self) -> None:
        """Wake a transiently crashed node; it restarts its current round
        (resending that round's messages) and resynchronizes by jumping on
        the first future-round message it hears."""
        if not self.crashed or not self.running:
            return
        self.crashed = False
        self._begin_round(self.timeout)

    def apply_clock_step(self, delta_local: float) -> None:
        """The local clock jumps by ``delta_local`` seconds.

        Deadlines are local, so a pending round timer fires earlier after
        a forward jump and later after a backward one; the round-length
        floor still applies.
        """
        if self._timer is None or not self.running or self.crashed:
            return
        remaining = self._timer.time - self.simulator.now
        remaining -= self.clock.global_duration(delta_local)
        self._timer.cancel()
        self._timer = self.simulator.schedule_in(
            max(0.0, remaining),
            self._on_timer,
            tag=f"round-end:{self.process.pid}:{self.process.round}",
        )

    # ------------------------------------------------------------------
    # Receive path.
    # ------------------------------------------------------------------
    def _on_receive(self, src: int, wire: _Wire) -> None:
        if not self.running or self.crashed:
            return
        self.process.receive(wire.round_number, src, wire.payload)
        current = self.process.round
        if wire.round_number == current:
            self.timely_receipts.setdefault(current, set()).add(src)
        elif wire.round_number > current:
            # Future-round message: end this round now, join round k_j,
            # and shorten it by the expected latency of the trigger.
            self.jumps += 1
            self._rounds_jumped.inc()
            self._recorder.record(
                "sync.jump",
                t=self.simulator.now,
                pid=self.process.pid,
                from_round=current,
                to_round=wire.round_number,
                src=src,
            )
            self._end_round(next_round=wire.round_number)
            remaining = self.timeout - self.latency_estimates[src]
            self.timely_receipts.setdefault(wire.round_number, set()).add(src)
            self._begin_round(remaining)
        else:
            self.late_messages += 1
            self._late_counter.inc()


@dataclass
class SyncRunResult:
    """Observations of one synchronized run.

    Attributes:
        n: number of nodes.
        matrices: per-round timely-delivery matrices ``A[dst, src]`` for
            rounds ``1..last_common_round``.  A process that skipped a
            round (jumped over it, or was crashed) contributes an
            all-``False`` row — including its diagonal entry, since it was
            not timely even to itself in a round it never executed.
        round_durations: per node, mean executed round duration (seconds).
        jumps: per node, number of fast-forward joins.
        late_messages: per node, messages that arrived after their round.
        decisions: ``pid -> value`` for deciding algorithms.
        decision_rounds: ``pid -> round`` at which each decision was
            first observed (the round whose end-of-round computed it).
        proposals: ``pid -> proposed value`` for algorithms that expose
            a ``proposal`` attribute (for validity checking).
        correct: pids that never crash permanently (everyone when the
            run has no fault plan).
        sync_error: per round, the spread (max - min) of the nodes'
            round-start times, in seconds — the synchronization quality.
            Aligned with ``matrices`` (index ``k - 1`` is round ``k``);
            rounds that not every node executed hold ``nan``, so a jump
            can never shift later rounds' readings onto the wrong round.
    """

    n: int
    matrices: list[np.ndarray] = field(default_factory=list)
    round_durations: list[float] = field(default_factory=list)
    jumps: list[int] = field(default_factory=list)
    late_messages: list[int] = field(default_factory=list)
    decisions: dict[int, Any] = field(default_factory=dict)
    decision_rounds: dict[int, int] = field(default_factory=dict)
    proposals: dict[int, Any] = field(default_factory=dict)
    correct: frozenset[int] = frozenset()
    sync_error: list[float] = field(default_factory=list)


class SyncRun:
    """Builds and executes a full synchronized GIRAF deployment."""

    def __init__(
        self,
        n: int,
        algorithm_factory: Callable[[int], GirafAlgorithm],
        oracle: Oracle,
        transport_factory: Callable[[Simulator], Transport],
        timeout: float,
        latency_table: np.ndarray,
        clocks: Optional[Sequence[Clock]] = None,
        start_times: Optional[Sequence[float]] = None,
        max_rounds: int = 100,
        fault_plan: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        recorder: Optional[RunRecorder] = None,
        observers: Sequence[Any] = (),
    ) -> None:
        self.n = n
        self.max_rounds = max_rounds
        self.fault_plan = fault_plan
        self.observers = list(observers)
        self.metrics = registry_or_null(metrics)
        self.recorder = recorder_or_null(recorder)
        self.simulator = Simulator()
        self.transport = transport_factory(self.simulator)
        if fault_plan is not None:
            if fault_plan.n != n:
                raise ValueError(
                    f"fault plan is for n={fault_plan.n}, run for n={n}"
                )
            # Link-level faults (bursts, partitions, slow links, frozen
            # peers) ride on the wire; round k of the plan maps to the
            # time window [(k-1)*timeout, k*timeout).
            install_plan(self.transport, fault_plan, timeout, metrics=metrics)
            if fault_plan.leader_churn:
                oracle = ChurningOracle(oracle, fault_plan)
        if clocks is None:
            clocks = [Clock() for _ in range(n)]
        if start_times is None:
            start_times = [0.0] * n
        self.nodes = [
            SyncedNode(
                process=GirafProcess(pid, algorithm_factory(pid)),
                oracle=oracle,
                transport=self.transport,
                simulator=self.simulator,
                clock=clocks[pid],
                timeout=timeout,
                latency_estimates=latency_table[pid],
                start_time=start_times[pid],
                max_rounds=max_rounds,
                metrics=metrics,
                recorder=recorder,
                observers=self.observers,
            )
            for pid in range(n)
        ]
        for node in self.nodes:
            proposal = getattr(node.process.algorithm, "proposal", None)
            if proposal is not None:
                for observer in self.observers:
                    method = getattr(observer, "on_proposal", None)
                    if method is not None:
                        method(node.process.pid, proposal)
        # The plan's round->time grid is anchored to the construction-time
        # timeout; the actual booking happens at run() so per-node state
        # mutated between construction and run (heterogeneous timeouts in
        # particular) is respected.
        self._plan_timeout = timeout
        self._faults_scheduled = False
        #: Which execution path the last :meth:`run` took ("scalar" or
        #: "batch"), and why the batched path was skipped, if it was.
        self.executed_mode: Optional[str] = None
        self.fallback_reason: Optional[str] = None

    def _schedule_node_faults(self, plan: FaultPlan, timeout: float) -> None:
        """Book the plan's node-level faults on the simulator clock."""

        def at(round_number: int) -> float:
            return (round_number - 1) * timeout

        activations = self.metrics
        recorder = self.recorder

        def do_crash(node: SyncedNode, permanent: bool) -> None:
            activations.counter("faults.activations", kind="crash").inc()
            recorder.record(
                "fault.crash",
                t=self.simulator.now,
                pid=node.process.pid,
                permanent=permanent,
            )
            node.crash(permanent)

        def do_recover(node: SyncedNode) -> None:
            activations.counter("faults.activations", kind="recover").inc()
            recorder.record(
                "fault.recover", t=self.simulator.now, pid=node.process.pid
            )
            node.recover()

        def do_clock_step(node: SyncedNode, offset: float) -> None:
            activations.counter("faults.activations", kind="clock-step").inc()
            recorder.record(
                "fault.clock_step",
                t=self.simulator.now,
                pid=node.process.pid,
                offset=offset,
            )
            node.apply_clock_step(offset)

        for crash in plan.crashes:
            node = self.nodes[crash.pid]
            permanent = crash.recover_round is None
            self.simulator.schedule(
                at(crash.at_round),
                lambda node=node, permanent=permanent: do_crash(node, permanent),
                tag=f"fault:crash:{crash.pid}",
            )
            if crash.recover_round is not None:
                self.simulator.schedule(
                    at(crash.recover_round),
                    lambda node=node: do_recover(node),
                    tag=f"fault:recover:{crash.pid}",
                )
        for step in plan.clock_steps:
            # A hair into the round, not on the boundary: at the exact
            # round start the previous round's timer is expiring at the
            # same timestamp, and a step applied to a timer with zero
            # remaining time is a silent no-op.  The hair is a fraction
            # of the *stepped node's own* timeout — with heterogeneous
            # timeouts, a fraction of another node's (shorter) round can
            # still land exactly on this node's boundary.
            node = self.nodes[step.pid]
            self.simulator.schedule(
                at(step.at_round) + 0.01 * node.timeout,
                lambda node=node, offset=step.offset: do_clock_step(
                    node, offset
                ),
                tag=f"fault:clock-step:{step.pid}",
            )

    def run(
        self, time_limit: Optional[float] = None, mode: str = "auto"
    ) -> SyncRunResult:
        """Run until every node passes ``max_rounds`` (or the time limit).

        ``mode`` selects the execution path:

        - ``"auto"`` (default): use the batched structure-of-arrays path
          (:mod:`repro.sync.batch`) when the run is eligible — probe
          stream, batch-capable time-invariant link model, no faults, no
          instrumentation, lockstep-uniform nodes — and fall back to the
          scalar event loop otherwise (``fallback_reason`` says why);
        - ``"scalar"``: always run the event loop (the reference path);
        - ``"batch"``: require the batched path; raise if ineligible.

        Both paths produce bit-identical :class:`SyncRunResult`s; the
        property suite and the conformance axis assert it.
        """
        if mode not in ("auto", "scalar", "batch"):
            raise ValueError(f"unknown mode {mode!r}")
        if time_limit is None:
            # Generous default: every round at full length plus slack —
            # at the *largest* timeout across nodes, or heterogeneous
            # runs silently truncate (the max-timeout node never
            # finishes its rounds and drags last_common_round down).
            slowest = max(node.timeout for node in self.nodes)
            time_limit = (self.max_rounds + 10) * slowest * 3
        if mode != "scalar":
            from repro.sync.batch import batch_ineligible_reason, run_batched

            reason = batch_ineligible_reason(self, time_limit)
            if reason is None:
                self.executed_mode = "batch"
                self.fallback_reason = None
                self.metrics.counter(
                    "sync.executed_mode", mode="batch"
                ).inc()
                return run_batched(self, time_limit)
            if mode == "batch":
                raise ValueError(
                    f"batch mode requested but the run is ineligible: {reason}"
                )
            self.fallback_reason = reason
            # The fallback taxonomy, as telemetry: one increment per run
            # that wanted the fast path and couldn't take it.
            self.metrics.counter("sync.batch_fallback", reason=reason).inc()
        self.executed_mode = "scalar"
        self.metrics.counter("sync.executed_mode", mode="scalar").inc()
        if self.fault_plan is not None and not self._faults_scheduled:
            self._faults_scheduled = True
            self._schedule_node_faults(self.fault_plan, self._plan_timeout)
        # "Done" must require having started: before the boot events fire
        # no node is running, and a bare ``not running`` predicate would
        # satisfy the simulator's entry check and stop the run at time 0.
        self.simulator.run(
            until=time_limit,
            stop_when=lambda: all(
                node.process.started and not node.running
                for node in self.nodes
            ),
        )
        return self._collect()

    def _collect(self) -> SyncRunResult:
        result = SyncRunResult(
            n=self.n,
            correct=(
                self.fault_plan.correct()
                if self.fault_plan is not None
                else frozenset(range(self.n))
            ),
        )
        # Permanently crashed nodes stop recording rounds at their crash;
        # they must not truncate the surviving nodes' observations.
        participants = [
            node for node in self.nodes if not node.crashed_permanently
        ] or list(self.nodes)
        last_round = min(
            max(node.round_ends, default=0) for node in participants
        )
        for k in range(1, last_round + 1):
            # No pre-seeded diagonal: a node that jumped over round k was
            # not timely even to itself there, and crediting it would
            # inflate P_M.  Nodes that did execute the round credited
            # themselves in ``timely_receipts`` when the round began.
            matrix = np.zeros((self.n, self.n), dtype=bool)
            for dst, node in enumerate(self.nodes):
                if k in node.round_ends:  # executed (not skipped) round k
                    for src in node.timely_receipts.get(k, ()):
                        matrix[dst, src] = True
            result.matrices.append(matrix)
            # The event path assembles matrices post-hoc, so observers'
            # ``on_round_matrix`` hooks fire here as a replay after the
            # simulation ends — same stream as the lockstep runner's live
            # notifications, delivered late.
            for observer in self.observers:
                method = getattr(observer, "on_round_matrix", None)
                if method is not None:
                    method(k, matrix)
            starts = [
                node.round_starts[k]
                for node in self.nodes
                if k in node.round_starts
            ]
            # One entry per round, aligned with ``matrices``: rounds some
            # node never started are nan rather than silently dropped
            # (dropping them shifted every later reading onto the wrong
            # round for any run with jumps).
            if len(starts) == self.n:
                spread = max(starts) - min(starts)
                result.sync_error.append(spread)
                self.metrics.histogram("sync.round_sync_error").observe(spread)
            else:
                result.sync_error.append(float("nan"))
        for node in self.nodes:
            durations = [
                node.round_ends[k] - node.round_starts[k]
                for k in node.round_ends
                if k in node.round_starts
            ]
            result.round_durations.append(
                float(np.mean(durations)) if durations else 0.0
            )
            result.jumps.append(node.jumps)
            result.late_messages.append(node.late_messages)
            proposal = getattr(node.process.algorithm, "proposal", None)
            if proposal is not None:
                result.proposals[node.process.pid] = proposal
            decision = node.process.decision()
            if decision is not None:
                result.decisions[node.process.pid] = decision
                if node.decision_round is not None:
                    result.decision_rounds[node.process.pid] = (
                        node.decision_round
                    )
        return result
