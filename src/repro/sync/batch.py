"""Batched structure-of-arrays execution of heartbeat round-sync runs.

The measurement experiments run the Section 5.1 protocol with the
all-to-all probe stream (:class:`~repro.sync.heartbeat.HeartbeatAlgorithm`)
over a time-invariant network.  In that configuration the protocol
degenerates into perfect lockstep: every node starts round ``k`` at the
same instant, no future-round message ever arrives (a message can never
outrun its own round's start), so no node ever jumps, and every round
lasts exactly ``timeout / (1 + drift)`` of global time.  The event loop
still pays one Python callback per message — ``rounds * n * (n - 1)``
heap operations that all compute a foregone conclusion.

This module computes the same run in a handful of NumPy passes:

1. the common round grid ``t[0..R]`` is accumulated with the exact float
   additions the scalar timers perform (``t[k] = t[k-1] + D``);
2. every link's latency column is pre-sampled from its own RNG substream
   in the same :data:`~repro.sim.transport.STREAM_CHUNK`-sized draws the
   transport's stream path makes, so the two paths consume bit-identical
   random values;
3. a :class:`~repro.faults.plan.FaultPlan`'s link-level faults are applied
   as whole-array passes per *epoch* — the maximal grid segments over
   which the plan's per-round state (who is down, which links are
   partitioned, which nodes are slowed, whether any burst is live) is
   constant — consuming the identical decisions the scalar
   :class:`~repro.faults.event.PlanLinkFaults` policy makes;
4. timeliness, late arrivals, and loss counts are evaluated as whole
   ``(rounds, n, n)`` arrays, applying the event queue's tie rules
   (a delivery and a round timer at the same timestamp fire in
   scheduling-sequence order) in closed form;
5. transport and round-sync telemetry (``repro.obs`` counters and the
   latency histogram) is bulk-accumulated from the same arrays,
   equivalent to the scalar path's per-event increments, and
   oracle-bearing runs replay each round's delivery rows into
   :class:`~repro.oracles.omega.HeartbeatOmega` through its row-local
   bulk seam;
6. the per-node observation state (``round_starts``, ``round_ends``,
   ``timely_receipts``, counters) is written back onto the
   :class:`~repro.sync.round_sync.SyncedNode` objects and the ordinary
   :meth:`SyncRun._collect` assembles the result — result construction
   (including the ``on_round_matrix`` observer replay) runs through the
   identical code as the scalar path.

Bit-identity (same matrices, ``sync_error``, ``jumps``,
``late_messages``, decision rounds — and, for instrumented runs, the
same metric totals) is asserted by
``tests/properties/test_prop_sync_batch.py`` and by the scalar-vs-batched
axis of :mod:`repro.check.differential`.

Why the tie rules are what they are
-----------------------------------

Events fire in ``(time, priority, seq)`` order and everything here uses
priority 0, so simultaneity resolves by scheduling sequence.  Round-``k``
begin blocks run at ``t[k-1]`` in pid order (round-1 blocks run inside
the boot events, which are scheduled in pid order at construction; each
later timer is scheduled inside its node's begin block, preserving the
order inductively).  Node ``src``'s deliveries of round ``k`` are
scheduled just before its own round-``k`` timer, so at ``t[k]``:

- a round-``k`` message arriving exactly at ``t[k]`` fires before
  ``dst``'s round-``k`` timer iff ``src < dst`` — timely iff
  ``arrival < t[k]`` or (``arrival == t[k]`` and ``src < dst``);
- any message from an earlier round arriving at ``t[k]`` was scheduled
  before every round-``k`` timer and therefore fires first, while
  ``dst`` is still running — it counts as late;
- at the final instant ``t[R]`` the same rules decide whether ``dst``
  is still running when a delivery fires: late messages are countable
  iff ``arrival < t[R]``, or ``arrival == t[R]`` and the message was
  sent before round ``R``.

A future-round message is impossible: a round-``k`` message arrives at
``arrival >= t[k-1]`` (latencies are non-negative), and whenever it is
delivered the receiver has already begun round ``k`` (a zero-latency
delivery is scheduled *after* the receiver's begin block of the same
instant, by the sequence argument above).  Hence no jumps, ever.

Crashes at round granularity keep the lockstep shape
----------------------------------------------------

A permanent crash of ``pid`` is an event at ``c = (at_round - 1) * tau``
scheduled *before* the simulation starts, so at any shared timestamp it
fires before deliveries and round timers (smaller sequence number) but
after the boot events.  Consequences, all closed-form:

- ``pid`` begins round ``k >= 2`` iff ``t[k-1] < c`` strictly (at a tie
  the crash cancels the pending round-``(k-1)`` timer first), and always
  begins round 1 (boots precede the crash even at ``t = 0``);
- ``pid`` never ends its last begun round ``b`` — in every tie case the
  crash wins against the timer — so it ends exactly rounds ``1..b-1``;
- a delivery to ``pid`` is received iff ``arrival < c`` strictly (at a
  tie the crash fires first), whether timely or late;
- a crash whose time falls before the (uniform) boot instant is a no-op
  on the node — the crash hook finds it not yet running — though the
  scheduled event still fires and counts as an activation.

The surviving majority (guaranteed by ``FaultPlan`` validation) keeps
the common grid: every non-crashed node runs all ``R`` rounds on the
same boundaries, which is what keeps the whole run vectorizable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.faults.event import PlanLinkFaults
from repro.faults.lockstep import ChurningOracle
from repro.giraf.oracle import NullOracle
from repro.oracles.omega import HeartbeatOmega
from repro.sim.transport import STREAM_CHUNK, Transport
from repro.sync.heartbeat import HeartbeatAlgorithm
from repro.sync.round_sync import MIN_ROUND_FRACTION, SyncRun, SyncRunResult


#: Fields of :class:`SyncRunResult` whose exact equality the batched path
#: guarantees, in reporting order.
RESULT_FIELDS = (
    "matrices",
    "sync_error",
    "round_durations",
    "jumps",
    "late_messages",
    "decisions",
    "decision_rounds",
    "proposals",
    "correct",
)


def result_divergences(a: SyncRunResult, b: SyncRunResult) -> list[str]:
    """Names of the :data:`RESULT_FIELDS` on which ``a`` and ``b`` differ.

    The comparison is *exact* (bit-level for floats; ``nan`` equals
    ``nan``, since a censored round must stay censored on both paths) —
    this is the equality the scalar-vs-batched conformance axis and the
    property suite assert.  An empty list means the results agree.
    """
    diffs: list[str] = []
    if a.n != b.n:
        diffs.append("n")
    if len(a.matrices) != len(b.matrices) or any(
        not np.array_equal(ma, mb) for ma, mb in zip(a.matrices, b.matrices)
    ):
        diffs.append("matrices")
    if not np.array_equal(
        np.asarray(a.sync_error), np.asarray(b.sync_error), equal_nan=True
    ):
        diffs.append("sync_error")
    for name in ("round_durations", "jumps", "late_messages",
                 "decisions", "decision_rounds", "proposals", "correct"):
        if getattr(a, name) != getattr(b, name):
            diffs.append(name)
    return diffs


def batch_ineligible_reason(
    run: SyncRun, time_limit: float
) -> Optional[str]:
    """Why ``run`` cannot take the batched path, or ``None`` if it can.

    The batched path reproduces the scalar event loop bit-for-bit for
    lockstep-uniform heartbeat runs — now including runs with a
    round-granular :class:`~repro.faults.plan.FaultPlan` (permanent
    crashes, loss bursts, partitions, slow nodes, leader churn), live
    telemetry, observers, and a :class:`HeartbeatOmega` oracle.  What
    still forces the scalar path is anything that can move a node off
    the common round grid (crash *recovery*, clock steps), randomness
    that cannot be pre-sampled (dynamic link models, non-plan fault
    policies), or per-event instrumentation with event-level semantics
    (the JSONL recorder, delivery tracing).  The returned string is the
    fallback taxonomy, surfaced as :attr:`SyncRun.fallback_reason` and
    counted per run in the ``sync.batch_fallback`` counter family.
    """
    for node in run.nodes:
        if node.process.round != 0 or node.running or node.crashed:
            return "a node already started"
    if run.recorder.enabled:
        return "run recorder enabled"
    transport = run.transport
    if type(transport) is not Transport:
        return f"transport subclass {type(transport).__name__}"
    if transport.trace_enabled:
        return "delivery tracing enabled"
    if transport.recorder_enabled:
        return "transport recorder enabled"
    if not transport.stream_sampling_active:
        return "link model is not batch-capable and time-invariant"
    if transport.streams_started or transport.messages_sent:
        return "transport already carried traffic"
    plan = run.fault_plan
    policy = transport.stream_fault_policy
    if plan is not None:
        if plan.clock_steps:
            return "fault plan schedules clock steps"
        if any(c.recover_round is not None for c in plan.crashes):
            return "fault plan schedules crash recovery"
        if policy is None:
            return "fault plan without its link fault policy"
        if type(policy) is not PlanLinkFaults or policy.plan is not plan:
            return "fault policy does not match the run's plan"
        if policy.timeout != run._plan_timeout:
            return "fault policy timeout differs from the plan's round grid"
        if policy._burst_counters or policy._seen_activations:
            return "fault policy already consumed"
    elif policy is not None:
        return "link fault policy without a matching plan"
    oracles = {id(node.oracle) for node in run.nodes}
    if len(oracles) != 1:
        return "nodes use distinct oracle instances"
    oracle = run.nodes[0].oracle
    inner = oracle._base if isinstance(oracle, ChurningOracle) else oracle
    if type(inner) is HeartbeatOmega:
        if inner.n != run.n:
            return "oracle dimension mismatch"
    elif type(inner) is not NullOracle:
        return f"oracle {type(inner).__name__} is not batch-supported"
    for node in run.nodes:
        if type(node.process.algorithm) is not HeartbeatAlgorithm:
            return "algorithm is not the heartbeat probe stream"
        if node.max_rounds != run.max_rounds:
            return "per-node max_rounds override"
    if len({node.timeout for node in run.nodes}) != 1:
        return "heterogeneous timeouts"
    if len({node.clock.drift for node in run.nodes}) != 1:
        return "heterogeneous clock drift"
    if len({node.start_time for node in run.nodes}) != 1:
        return "staggered start times"
    if run.simulator.events_processed or run.simulator.pending_events != run.n:
        return "simulator already used or extra events scheduled"
    return _time_limit_reason(run, time_limit)


def _time_limit_reason(run: SyncRun, time_limit: float) -> Optional[str]:
    """O(1) in the common case: decide the time-limit check from a
    closed-form bound on the accumulated grid end, materializing the
    exact O(R) grid only when the limit falls inside the bound's
    uncertainty band.

    The exact grid end ``t[R]`` is ``R`` sequential IEEE additions of
    ``step`` onto ``start``; each addition perturbs by at most one ulp
    of its (monotone, for positive steps bounded by the larger of the
    endpoints') running value, so ``|t[R] - (start + R*step)|`` is below
    ``(R + 4) * 2^-52 * max(|start|, |start + R*step|, |step|)`` with a
    2x safety factor folded in.  Limits clear of that band need no grid.
    """
    node = run.nodes[0]
    duration = max(node.timeout, MIN_ROUND_FRACTION * node.timeout)
    step = node.clock.global_duration(duration)
    start = node.start_time
    naive = start + run.max_rounds * step
    scale = max(abs(start), abs(naive), abs(step))
    margin = (run.max_rounds + 4) * 2.0 ** -52 * scale
    if naive + margin <= time_limit:
        return None
    if naive - margin > time_limit:
        return "time limit truncates the run"
    if _round_grid(run)[-1] > time_limit:
        return "time limit truncates the run"
    return None


def _round_grid(run: SyncRun) -> list[float]:
    """The common round boundaries ``t[0..R]`` as exact scalar floats.

    ``t[0]`` is the (uniform) start time; each round lasts
    ``max(timeout, MIN_ROUND_FRACTION * timeout)`` on the local clock —
    the exact expression :meth:`SyncedNode._begin_round` evaluates —
    mapped to global time through the (uniform) drift.  The grid is
    accumulated sequentially so every boundary is the same IEEE double
    the scalar timers produce.
    """
    node = run.nodes[0]
    duration = max(node.timeout, MIN_ROUND_FRACTION * node.timeout)
    step = node.clock.global_duration(duration)
    times = [node.start_time]
    for _ in range(run.max_rounds):
        times.append(times[-1] + step)
    return times


def _presample_links(run: SyncRun, per_src_rounds: np.ndarray) -> np.ndarray:
    """Latency block ``[k, dst, src]`` for each link's sent rounds.

    ``per_src_rounds[src]`` is how many rounds ``src`` actually begins
    (and therefore broadcasts in): the scalar path consumes exactly one
    base draw per sent message per link, so each directed link
    ``src -> dst`` must draw exactly that many values — a crashed
    source's links stop mid-stream, and drawing further would desync the
    link generators from the scalar path.  Each link draws from its own
    substream in :data:`STREAM_CHUNK`-sized chunks — the same calls, on
    the same generator, in the same order as
    :meth:`Transport._next_stream_latency` — so the values are
    bit-identical to what the scalar path would consume.  The consumed
    stream state is installed back into the transport, leaving it
    exactly as a scalar run would.  Lost messages are ``+inf``; the
    diagonal and never-sent rounds are ``+inf`` too and masked out by
    callers.
    """
    transport = run.transport
    model = transport._stream_base
    n = run.n
    rounds = run.max_rounds
    block = np.full((rounds, n, n), np.inf)
    placeholder = np.zeros(STREAM_CHUNK)
    for src in range(n):
        draws = int(per_src_rounds[src])
        if draws <= 0:
            continue
        chunks_needed = -(-draws // STREAM_CHUNK)  # ceil
        for dst in range(n):
            if src == dst:
                continue
            rng = model.link_stream(src, dst)
            chunks = [
                model.sample_link_batch(src, dst, placeholder, rng)
                for _ in range(chunks_needed)
            ]
            column = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            block[:draws, dst, src] = column[:draws]
            cursor = (draws - 1) % STREAM_CHUNK + 1
            transport._streams[(src, dst)] = [rng, chunks[-1], cursor]
    return block


def _plan_round_state(
    plan, pr: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-grid-round fault state, computed once per *epoch*.

    The plan's per-round predicates (``down_at``, ``partitioned``,
    ``slow_factor``, burst activity) are step functions of the plan
    round, changing only at window boundaries.  Segmenting the grid at
    those boundaries and evaluating the plan's own methods once per
    epoch gives exactness for free: a handful of Python calls instead of
    one per message.

    Returns ``(down, cross, slow, burst_any)`` with shapes
    ``(R, n)``, ``(R, n, n)`` (``[dst, src]``), ``(R, n)``, ``(R,)``.
    """
    bounds: set[int] = set()
    for crash in plan.crashes:
        bounds.add(crash.at_round)
    for partition in plan.partitions:
        bounds.add(partition.start_round)
        bounds.add(partition.heal_round)
    for burst in plan.loss_bursts:
        bounds.add(burst.start_round)
        bounds.add(burst.end_round + 1)
    for slow in plan.slow_nodes:
        bounds.add(slow.start_round)
        bounds.add(slow.end_round + 1)
    edges = np.asarray(sorted(bounds), dtype=np.int64)
    eid = np.searchsorted(edges, pr, side="right")
    _, first, inverse = np.unique(eid, return_index=True, return_inverse=True)
    epochs = first.size
    down_e = np.zeros((epochs, n), dtype=bool)
    cross_e = np.zeros((epochs, n, n), dtype=bool)
    slow_e = np.ones((epochs, n))
    burst_e = np.zeros(epochs, dtype=bool)
    for i, idx in enumerate(first):
        q = int(pr[idx])
        down_e[i] = [plan.down_at(pid, q) for pid in range(n)]
        slow_e[i] = [plan.slow_factor(pid, q) for pid in range(n)]
        for src in range(n):
            for dst in range(n):
                if src != dst and plan.partitioned(src, dst, q):
                    cross_e[i, dst, src] = True
        burst_e[i] = any(b.active_at(q) for b in plan.loss_bursts)
    return down_e[inverse], cross_e[inverse], slow_e[inverse], burst_e[inverse]


def _bulk_drop(transport: Transport, cause: str, count: int) -> None:
    """Mirror ``count`` scalar ``_count_drop`` calls, creating the
    per-cause counter lazily exactly as the scalar path does (a
    zero-valued counter the scalar path never created would break
    snapshot equality)."""
    if not count:
        return
    counter = transport._drop_counters.get(cause)
    if counter is None:
        counter = transport._metrics.counter("transport.dropped", cause=cause)
        transport._drop_counters[cause] = counter
    counter.inc(count)


def run_batched(run: SyncRun, time_limit: float) -> SyncRunResult:
    """Execute an eligible ``run`` on the batched path.

    Writes the same observation state onto the nodes, the transport, the
    metrics registries, the oracle, and the simulator clock that the
    scalar event loop would have left behind —
    ``round_starts``/``round_ends``/``timely_receipts`` dicts,
    late-message counters, stream cursors and fault-policy state,
    ``messages_sent``/``lost``, counter and histogram totals — then
    delegates to :meth:`SyncRun._collect`, so the result (and the
    ``on_round_matrix`` observer replay) is assembled by the very same
    code as the scalar path.

    Not mirrored (documented divergence): per-process inboxes, the
    pending outgoing :class:`~repro.giraf.kernel.RoundOutput`, the
    simulator's ``events_processed``/pending-event bookkeeping, and the
    fault policy's transient ``last_drop_cause``; none of them feed
    :class:`~repro.sync.round_sync.SyncRunResult` or the metric totals.
    """
    n = run.n
    rounds = run.max_rounds
    times = _round_grid(run)
    assert times[-1] <= time_limit, "eligibility must pre-check the grid"

    starts = np.asarray(times[:-1])
    ends = np.asarray(times[1:])
    stop = times[-1]
    transport = run.transport
    plan = run.fault_plan
    policy = transport.stream_fault_policy

    # ------------------------------------------------------------------
    # Node-level crash schedule (permanent crashes only; eligibility
    # rejects recoveries and clock steps).
    # ------------------------------------------------------------------
    crash_time = np.full(n, np.inf)
    crash_events_fired = 0
    if plan is not None:
        run._faults_scheduled = True
        tau = run._plan_timeout
        for crash in plan.crashes:
            c = (crash.at_round - 1) * tau  # the exact scalar expression
            if c <= stop:
                crash_events_fired += 1
            if c < crash_time[crash.pid]:
                crash_time[crash.pid] = c
    # A crash event is *effective* only if the node is already running
    # when it fires; one scheduled before the (uniform) boot instant
    # finds the node not yet booted and does nothing.
    effective = (crash_time <= stop) & (crash_time >= starts[0])
    begun = np.full(n, rounds, dtype=np.int64)
    for pid in np.flatnonzero(effective):
        begun[pid] = min(
            rounds,
            1 + int(np.count_nonzero(starts[1:] < crash_time[pid])),
        )
    ended = np.where(effective, begun - 1, rounds)
    # Receives of a crashed node stop strictly before its crash instant.
    cut = np.where(effective, crash_time, np.inf)

    # ------------------------------------------------------------------
    # Pre-sample every link's latency stream (one draw per sent message,
    # dropped or not — the stream path's contract) and overlay the
    # plan's epoch-constant link faults.
    # ------------------------------------------------------------------
    latencies = _presample_links(run, begun)
    k_index = np.arange(1, rounds + 1)
    off_diag = ~np.eye(n, dtype=bool)
    sent = (k_index[:, None, None] <= begun[None, None, :]) & off_diag

    if plan is not None:
        # The plan's round grid is anchored to wall time through the
        # construction timeout; grid round k maps to the plan round
        # covering its start instant — the same expression
        # PlanLinkFaults.round_of evaluates per message.
        pr = np.maximum(
            1, (starts // run._plan_timeout).astype(np.int64) + 1
        )
        down, cross, slow, burst_any = _plan_round_state(plan, pr, n)
        crash_drop = sent & (down[:, :, None] | down[:, None, :])
        part_drop = sent & ~crash_drop & cross
        burst_drop = np.zeros_like(sent)
        if burst_any.any():
            # Burst decisions ride the policy's own per-link counters and
            # SHA draws: calling the installed policy for exactly the
            # messages whose scalar drop() call would reach the burst
            # loop — per link, in round order — reproduces counters,
            # draws, activations and metrics verbatim.
            candidate = sent & ~crash_drop & ~cross & burst_any[:, None, None]
            for src in range(n):
                for dst in range(n):
                    if src == dst:
                        continue
                    for k in np.flatnonzero(candidate[:, dst, src]):
                        if policy.drop(src, dst, float(starts[k])):
                            burst_drop[k, dst, src] = True
        fault_drop = crash_drop | part_drop | burst_drop
        factor = slow[:, :, None] * slow[:, None, :]
        values = np.where(factor != 1.0, latencies * factor, latencies)
        # Fault-episode activation telemetry the skipped scalar drop()
        # calls would have produced, deduplicated the same way.
        if crash_events_fired:
            run.metrics.counter("faults.activations", kind="crash").inc(
                crash_events_fired
            )
        last_pr = int(pr[-1])
        for index, crash in enumerate(plan.crashes):
            # Messages touch every process in every round (the healthy
            # majority keeps broadcasting), so a crash-link episode fires
            # iff the run reaches its first down round.
            if last_pr >= crash.at_round:
                policy._activate("crash-link", index)
        if part_drop.any():
            part_rounds = part_drop.any(axis=(1, 2))
            for q in np.unique(pr[part_rounds]):
                for index, partition in enumerate(plan.partitions):
                    if partition.active_at(int(q)):
                        policy._activate("partition", index)
    else:
        fault_drop = np.zeros_like(sent)
        values = latencies

    deliverable = sent & ~fault_drop & np.isfinite(values)
    natural_lost = sent & ~fault_drop & np.isinf(values)
    arrival = starts[:, None, None] + values

    # ------------------------------------------------------------------
    # The event queue's tie rules, in closed form.
    # ------------------------------------------------------------------
    # [dst, src] orientation: rows are receivers, columns senders.
    src_before_dst = np.arange(n)[None, :] < np.arange(n)[:, None]
    end_col = ends[:, None, None]
    received = deliverable & (arrival < cut[None, :, None])
    timely = received & (
        (arrival < end_col) | ((arrival == end_col) & src_before_dst)
    )
    countable = (arrival < stop) | (
        (arrival == stop) & (k_index[:, None, None] < rounds)
    )
    late = received & ~timely & countable
    late_counts = late.sum(axis=(0, 2))

    # The scalar loop stops at the last surviving node's final timer;
    # deliveries landing exactly then were scheduled after it (and never
    # fire) iff they are round-R sends of a higher-pid (crashed) node.
    last_alive = int(np.flatnonzero(~effective).max())
    fired = deliverable & (
        (arrival < stop)
        | (
            (arrival == stop)
            & (
                (k_index[:, None, None] < rounds)
                | (np.arange(n)[None, None, :] <= last_alive)
            )
        )
    )

    # ------------------------------------------------------------------
    # Per-node observation state (what _collect and the tests read).
    # ------------------------------------------------------------------
    for node in run.nodes:
        pid = node.process.pid
        b = int(begun[pid])
        e = int(ended[pid])
        receipts: dict[int, set[int]] = {}
        timely_to = timely[:, pid, :]
        for k in range(1, b + 1):
            srcs = set(np.flatnonzero(timely_to[k - 1]).tolist())
            srcs.add(pid)
            receipts[k] = srcs
        node.timely_receipts = receipts
        node.round_starts = {k: times[k - 1] for k in range(1, b + 1)}
        node.round_ends = {k: times[k] for k in range(1, e + 1)}
        node.late_messages = int(late_counts[pid])
        node.jumps = 0
        node.running = False
        node.decision_round = None
        if effective[pid]:
            node.crashed = True
            node.crashed_permanently = True
            node.process.round = b
            node.process.algorithm.rounds_computed = e
        else:
            node.process.round = rounds + 1
            node.process.algorithm.rounds_computed = rounds
        node._rounds_started.inc(b)
        node._timeout_fires.inc(e)
        if late_counts[pid]:
            node._late_counter.inc(int(late_counts[pid]))

    # ------------------------------------------------------------------
    # Transport state and telemetry, bulk-equivalent to per-send work.
    # ------------------------------------------------------------------
    sent_total = int(begun.sum()) * (n - 1)
    transport.messages_sent += sent_total
    transport._sent_counter.inc(sent_total)
    lost_total = int(fault_drop.sum()) + int(natural_lost.sum())
    transport.messages_lost += lost_total
    if plan is not None:
        _bulk_drop(transport, "crash", int(crash_drop.sum()))
        _bulk_drop(transport, "partition", int(part_drop.sum()))
        _bulk_drop(transport, "loss-burst", int(burst_drop.sum()))
    _bulk_drop(transport, "link", int(natural_lost.sum()))
    delivered_total = int(fired.sum())
    if delivered_total:
        transport._delivered_counter.inc(delivered_total)
    # Histogram observations happen at send time, in send order:
    # round-major, then sender pid, then ascending destination.
    values_by_send = np.transpose(values, (0, 2, 1))
    mask_by_send = np.transpose(deliverable, (0, 2, 1))
    transport._latency_hist.observe_many(values_by_send[mask_by_send])

    # ------------------------------------------------------------------
    # Oracle and observer replay: the boot queries, then each round's
    # per-ender row observations and queries, in scalar order.  The
    # heartbeat detector is row-local, so bulk row observation followed
    # by in-order queries is bit-equivalent to the interleaved scalar
    # sequence.  Skipped entirely when nothing listens.
    # ------------------------------------------------------------------
    oracle = run.nodes[0].oracle
    inner = oracle._base if isinstance(oracle, ChurningOracle) else oracle
    wants_oracle = type(inner) is not NullOracle
    wants_notify = any(
        getattr(observer, "on_oracle", None) is not None
        for observer in run.observers
    )
    if wants_oracle or wants_notify:
        for node in run.nodes:
            output = oracle.query(node.process.pid, 0)
            node._notify("on_oracle", node.process.pid, 0, output)
        observe_rows = getattr(oracle, "observe_rows", None)
        ends_per_round = [
            [pid for pid in range(n) if k <= ended[pid]]
            for k in range(1, rounds + 1)
        ]
        for k in range(1, rounds + 1):
            enders = ends_per_round[k - 1]
            if not enders:
                continue
            if observe_rows is not None:
                observe_rows(k, timely[k - 1], rows=enders)
            for pid in enders:
                output = oracle.query(pid, k)
                run.nodes[pid]._notify("on_oracle", pid, k, output)

    # Leave the simulator where the scalar loop stops: at the last
    # surviving round-end timer, with the never-fired events discarded.
    run.simulator.drain()
    run.simulator.fast_forward(stop)
    return run._collect()
