"""Batched structure-of-arrays execution of heartbeat round-sync runs.

The measurement experiments run the Section 5.1 protocol with the
all-to-all probe stream (:class:`~repro.sync.heartbeat.HeartbeatAlgorithm`)
over a clean, time-invariant network.  In that configuration the protocol
degenerates into perfect lockstep: every node starts round ``k`` at the
same instant, no future-round message ever arrives (a message can never
outrun its own round's start), so no node ever jumps, and every round
lasts exactly ``timeout / (1 + drift)`` of global time.  The event loop
still pays one Python callback per message — ``rounds * n * (n - 1)``
heap operations that all compute a foregone conclusion.

This module computes the same run in a handful of NumPy passes:

1. the common round grid ``t[0..R]`` is accumulated with the exact float
   additions the scalar timers perform (``t[k] = t[k-1] + D``);
2. every link's latency column is pre-sampled from its own RNG substream
   in the same :data:`~repro.sim.transport.STREAM_CHUNK`-sized draws the
   transport's stream path makes, so the two paths consume bit-identical
   random values;
3. timeliness, late arrivals, and loss counts are evaluated as whole
   ``(rounds, n, n)`` arrays, applying the event queue's tie rules
   (a delivery and a round timer at the same timestamp fire in
   scheduling-sequence order) in closed form;
4. the per-node observation state (``round_starts``, ``round_ends``,
   ``timely_receipts``, counters) is written back onto the
   :class:`~repro.sync.round_sync.SyncedNode` objects and the ordinary
   :meth:`SyncRun._collect` assembles the result — result construction
   runs through the identical code as the scalar path.

Bit-identity (same matrices, ``sync_error``, ``jumps``,
``late_messages``, decision rounds) is asserted by
``tests/properties/test_prop_sync_batch.py`` and by the scalar-vs-batched
axis of :mod:`repro.check.differential`.

Why the tie rules are what they are
-----------------------------------

Events fire in ``(time, priority, seq)`` order and everything here uses
priority 0, so simultaneity resolves by scheduling sequence.  Round-``k``
begin blocks run at ``t[k-1]`` in pid order (round-1 blocks run inside
the boot events, which are scheduled in pid order at construction; each
later timer is scheduled inside its node's begin block, preserving the
order inductively).  Node ``src``'s deliveries of round ``k`` are
scheduled just before its own round-``k`` timer, so at ``t[k]``:

- a round-``k`` message arriving exactly at ``t[k]`` fires before
  ``dst``'s round-``k`` timer iff ``src < dst`` — timely iff
  ``arrival < t[k]`` or (``arrival == t[k]`` and ``src < dst``);
- any message from an earlier round arriving at ``t[k]`` was scheduled
  before every round-``k`` timer and therefore fires first, while
  ``dst`` is still running — it counts as late;
- at the final instant ``t[R]`` the same rules decide whether ``dst``
  is still running when a delivery fires: late messages are countable
  iff ``arrival < t[R]``, or ``arrival == t[R]`` and the message was
  sent before round ``R``.

A future-round message is impossible: a round-``k`` message arrives at
``arrival >= t[k-1]`` (latencies are non-negative), and whenever it is
delivered the receiver has already begun round ``k`` (a zero-latency
delivery is scheduled *after* the receiver's begin block of the same
instant, by the sequence argument above).  Hence no jumps, ever.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.giraf.oracle import NullOracle
from repro.sim.transport import STREAM_CHUNK, Transport
from repro.sync.heartbeat import HeartbeatAlgorithm
from repro.sync.round_sync import MIN_ROUND_FRACTION, SyncRun, SyncRunResult


#: Fields of :class:`SyncRunResult` whose exact equality the batched path
#: guarantees, in reporting order.
RESULT_FIELDS = (
    "matrices",
    "sync_error",
    "round_durations",
    "jumps",
    "late_messages",
    "decisions",
    "decision_rounds",
    "proposals",
    "correct",
)


def result_divergences(a: SyncRunResult, b: SyncRunResult) -> list[str]:
    """Names of the :data:`RESULT_FIELDS` on which ``a`` and ``b`` differ.

    The comparison is *exact* (bit-level for floats; ``nan`` equals
    ``nan``, since a censored round must stay censored on both paths) —
    this is the equality the scalar-vs-batched conformance axis and the
    property suite assert.  An empty list means the results agree.
    """
    diffs: list[str] = []
    if a.n != b.n:
        diffs.append("n")
    if len(a.matrices) != len(b.matrices) or any(
        not np.array_equal(ma, mb) for ma, mb in zip(a.matrices, b.matrices)
    ):
        diffs.append("matrices")
    if not np.array_equal(
        np.asarray(a.sync_error), np.asarray(b.sync_error), equal_nan=True
    ):
        diffs.append("sync_error")
    for name in ("round_durations", "jumps", "late_messages",
                 "decisions", "decision_rounds", "proposals", "correct"):
        if getattr(a, name) != getattr(b, name):
            diffs.append(name)
    return diffs


def batch_ineligible_reason(
    run: SyncRun, time_limit: float
) -> Optional[str]:
    """Why ``run`` cannot take the batched path, or ``None`` if it can.

    The batched path reproduces the scalar event loop bit-for-bit only
    under the perfect-lockstep preconditions; anything that could make a
    node jump, crash, observe, or consume randomness differently forces
    the scalar path.  The returned string is surfaced as
    :attr:`SyncRun.fallback_reason`.
    """
    if run.fault_plan is not None:
        return "fault plan installed"
    if run.observers:
        return "observers attached"
    if run.metrics.enabled or run.recorder.enabled:
        return "run telemetry (metrics/recorder) enabled"
    for node in run.nodes:
        if node.process.round != 0 or node.running or node.crashed:
            return "a node already started"
    transport = run.transport
    if type(transport) is not Transport:
        return f"transport subclass {type(transport).__name__}"
    if transport.trace_enabled:
        return "delivery tracing enabled"
    if transport.instrumented:
        return "transport telemetry (metrics/recorder) enabled"
    if not transport.stream_sampling_active:
        return "link model is not batch-capable and time-invariant"
    if transport.streams_started or transport.messages_sent:
        return "transport already carried traffic"
    for node in run.nodes:
        if type(node.process.algorithm) is not HeartbeatAlgorithm:
            return "algorithm is not the heartbeat probe stream"
        if type(node.oracle) is not NullOracle:
            return "oracle is not the null oracle"
        if node.max_rounds != run.max_rounds:
            return "per-node max_rounds override"
    if len({node.timeout for node in run.nodes}) != 1:
        return "heterogeneous timeouts"
    if len({node.clock.drift for node in run.nodes}) != 1:
        return "heterogeneous clock drift"
    if len({node.start_time for node in run.nodes}) != 1:
        return "staggered start times"
    if run.simulator.events_processed or run.simulator.pending_events != run.n:
        return "simulator already used or extra events scheduled"
    if _round_grid(run)[-1] > time_limit:
        return "time limit truncates the run"
    return None


def _round_grid(run: SyncRun) -> list[float]:
    """The common round boundaries ``t[0..R]`` as exact scalar floats.

    ``t[0]`` is the (uniform) start time; each round lasts
    ``max(timeout, MIN_ROUND_FRACTION * timeout)`` on the local clock —
    the exact expression :meth:`SyncedNode._begin_round` evaluates —
    mapped to global time through the (uniform) drift.  The grid is
    accumulated sequentially so every boundary is the same IEEE double
    the scalar timers produce.
    """
    node = run.nodes[0]
    duration = max(node.timeout, MIN_ROUND_FRACTION * node.timeout)
    step = node.clock.global_duration(duration)
    times = [node.start_time]
    for _ in range(run.max_rounds):
        times.append(times[-1] + step)
    return times


def _presample_links(run: SyncRun, rounds: int) -> np.ndarray:
    """Latency block ``[k, dst, src]`` for rounds ``1..rounds``.

    Each directed link draws from its own substream in
    :data:`STREAM_CHUNK`-sized chunks — the same calls, on the same
    generator, in the same order as
    :meth:`Transport._next_stream_latency` — so the values are
    bit-identical to what the scalar path would consume.  The consumed
    stream state is installed back into the transport, leaving it
    exactly as a scalar run would.  Lost messages are ``+inf``; the
    diagonal (never sent) is ``+inf`` too and masked out by callers.
    """
    transport = run.transport
    model = transport.link_model
    n = run.n
    block = np.full((rounds, n, n), np.inf)
    chunks_needed = -(-rounds // STREAM_CHUNK)  # ceil
    placeholder = np.zeros(STREAM_CHUNK)
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            rng = model.link_stream(src, dst)
            chunks = [
                model.sample_link_batch(src, dst, placeholder, rng)
                for _ in range(chunks_needed)
            ]
            if chunks:
                column = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                block[:, dst, src] = column[:rounds]
                cursor = (rounds - 1) % STREAM_CHUNK + 1
                transport._streams[(src, dst)] = [rng, chunks[-1], cursor]
    return block


def run_batched(run: SyncRun, time_limit: float) -> SyncRunResult:
    """Execute an eligible ``run`` on the batched path.

    Writes the same observation state onto the nodes, the transport, and
    the simulator clock that the scalar event loop would have left
    behind — ``round_starts``/``round_ends``/``timely_receipts`` dicts,
    late-message counters, stream cursors, ``messages_sent``/``lost`` —
    then delegates to :meth:`SyncRun._collect`, so the result is
    assembled by the very same code as the scalar path.

    Not mirrored (documented divergence): per-process inboxes, the
    pending outgoing :class:`~repro.giraf.kernel.RoundOutput`, and the
    simulator's ``events_processed`` counter; none of them feed
    :class:`~repro.sync.round_sync.SyncRunResult`.
    """
    n = run.n
    rounds = run.max_rounds
    times = _round_grid(run)
    assert times[-1] <= time_limit, "eligibility must pre-check the grid"

    latencies = _presample_links(run, rounds)
    starts = np.asarray(times[:-1])
    ends = np.asarray(times[1:])
    stop = times[-1]

    arrival = starts[:, None, None] + latencies
    finite = np.isfinite(arrival)
    # [dst, src] orientation: rows are receivers, columns senders.
    src_before_dst = np.arange(n)[None, :] < np.arange(n)[:, None]
    end_col = ends[:, None, None]
    timely = finite & (
        (arrival < end_col) | ((arrival == end_col) & src_before_dst)
    )
    countable = (arrival < stop) | (
        (arrival == stop)
        & (np.arange(rounds)[:, None, None] < rounds - 1)
    )
    late = finite & ~timely & countable
    late_counts = late.sum(axis=(0, 2))

    for node in run.nodes:
        pid = node.process.pid
        receipts: dict[int, set[int]] = {}
        timely_to = timely[:, pid, :]
        for k in range(1, rounds + 1):
            srcs = set(np.flatnonzero(timely_to[k - 1]).tolist())
            srcs.add(pid)
            receipts[k] = srcs
        node.timely_receipts = receipts
        node.round_starts = {k: times[k - 1] for k in range(1, rounds + 1)}
        node.round_ends = {k: times[k] for k in range(1, rounds + 1)}
        node.late_messages = int(late_counts[pid])
        node.jumps = 0
        node.running = False
        node.decision_round = None
        node.process.round = rounds + 1
        node.process.algorithm.rounds_computed = rounds

    transport = run.transport
    off_diagonal = ~np.eye(n, dtype=bool)
    transport.messages_sent += rounds * n * (n - 1)
    transport.messages_lost += int(np.isinf(latencies[:, off_diagonal]).sum())

    # Leave the simulator where the scalar loop stops: at the last
    # round-end timer, with the (never-fired) boot events discarded.
    run.simulator.drain()
    run.simulator.fast_forward(stop)
    return run._collect()
