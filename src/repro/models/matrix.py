"""Round communication matrices.

Convention (paper, Section 4.1): ``A`` is ``n x n``, rows are destinations,
columns are sources; ``A[d, s] = 1`` iff the message sent by ``p_s`` in
round ``k`` reaches ``p_d`` in round ``k``.  The diagonal is always 1: a
process's link with itself is timely by definition and counts toward
j-source/j-destination totals (footnote 1 of the paper).

Matrices are ``numpy`` boolean arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def majority(n: int) -> int:
    """The paper's majority threshold: ``floor(n/2) + 1``."""
    if n < 1:
        raise ValueError("n must be positive")
    return n // 2 + 1


def full_matrix(n: int) -> np.ndarray:
    """All-timely round: every entry 1."""
    return np.ones((n, n), dtype=bool)


def empty_matrix(n: int) -> np.ndarray:
    """No timely deliveries except self-links."""
    return np.eye(n, dtype=bool)


def iid_matrix(n: int, p: float, rng: np.random.Generator) -> np.ndarray:
    """Sample a matrix with IID Bernoulli(``p``) entries, diagonal forced to 1.

    This is the Section 4 link model: each off-diagonal entry is timely
    independently with probability ``p``.  (The analysis does not treat the
    self-link specially, but a real process always has its own message; the
    closed forms in :mod:`repro.analysis.equations` follow the paper and
    use all ``n^2`` entries where the paper does.)
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be a probability, got {p}")
    matrix = rng.random((n, n)) < p
    np.fill_diagonal(matrix, True)
    return matrix


def validate_matrix(matrix: np.ndarray, n: Optional[int] = None) -> None:
    """Raise ``ValueError`` unless ``matrix`` is a valid round matrix."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"round matrix must be square, got shape {matrix.shape}")
    if n is not None and matrix.shape[0] != n:
        raise ValueError(f"expected {n} processes, matrix has {matrix.shape[0]}")
    if matrix.dtype != bool:
        raise ValueError(f"round matrix must be boolean, got dtype {matrix.dtype}")
    if not bool(np.all(np.diagonal(matrix))):
        raise ValueError("self-links must be timely (diagonal must be all ones)")
