"""Timing models: ES, eventual LM, eventual WLM (new), eventual AFM.

A *timing model* restricts which messages must be timely during stable
periods.  Following the paper's Section 4.1, all communication of one round
is an ``n x n`` 0/1 matrix ``A`` with rows indexed by destination and
columns by source: ``A[d, s] = 1`` iff the round-``k`` message of ``p_s``
reaches ``p_d`` within round ``k``.  A model is a predicate over such
matrices; a round *satisfies* the model if its matrix does.

- :mod:`matrix` — matrix conventions and constructors.
- :mod:`properties` — the four predicates plus the j-source/j-destination
  building blocks.
- :mod:`repair` — minimally edit a sampled matrix so it satisfies a model
  (used to force stability from a chosen GSR in lockstep runs).
- :mod:`registry` — one metadata record per model: predicate, decision
  rounds of its fastest algorithm, leader requirements.
- :mod:`gsr` — locate stabilization (GSR, decision windows) in a trace.
"""

from repro.models.matrix import (
    full_matrix,
    empty_matrix,
    iid_matrix,
    majority,
    validate_matrix,
)
from repro.models.properties import (
    GS_HUB,
    LINK_ASYNC,
    LINK_PSYNC,
    LINK_SYNC,
    canonical_granular_assumptions,
    granular_guaranteed,
    granular_link_count,
    is_j_source,
    is_j_destination,
    satisfies_es,
    satisfies_granular,
    satisfies_gs,
    satisfies_lm,
    satisfies_wlm,
    satisfies_afm,
)
from repro.models.registry import TimingModel, MODELS, get_model, model_names
from repro.models.repair import repair_to_satisfy
from repro.models.gsr import first_satisfying_window, gsr_of_trace

__all__ = [
    "full_matrix",
    "empty_matrix",
    "iid_matrix",
    "majority",
    "validate_matrix",
    "is_j_source",
    "is_j_destination",
    "satisfies_es",
    "satisfies_lm",
    "satisfies_wlm",
    "satisfies_afm",
    "satisfies_gs",
    "satisfies_granular",
    "canonical_granular_assumptions",
    "granular_guaranteed",
    "granular_link_count",
    "GS_HUB",
    "LINK_ASYNC",
    "LINK_PSYNC",
    "LINK_SYNC",
    "TimingModel",
    "MODELS",
    "get_model",
    "model_names",
    "repair_to_satisfy",
    "first_satisfying_window",
    "gsr_of_trace",
]
