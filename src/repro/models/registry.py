"""Registry of the timing models the paper compares.

Each record ties together a model's predicate, whether it needs an
:math:`\\Omega` leader, and the number of consecutive satisfying rounds the
*fastest known algorithm* for the model needs to reach global decision —
the counts the paper uses throughout Section 4:

====================  =======  ==========================================
model                 rounds   source
====================  =======  ==========================================
ES                    3        Dutta, Guerraoui & Keidar [14]
eventual LM           3        Keidar & Shraer [19]
eventual WLM          4        this paper's Algorithm 2, stable leader
eventual WLM          5        this paper's Algorithm 2, worst case
simulated WLM         7        optimal LM algorithm over Algorithm 3
eventual AFM          5        Keidar & Shraer [19]
====================  =======  ==========================================

The registry keys are the names used by the analysis and the experiment
harness: ``"ES"``, ``"LM"``, ``"WLM"``, ``"WLM_SIM"``, ``"AFM"``.
``"WLM_SIM"`` shares WLM's predicate; only the round count differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from repro.models.properties import (
    GS_HUB,
    batch_satisfies_afm,
    batch_satisfies_es,
    batch_satisfies_gs,
    batch_satisfies_lm,
    batch_satisfies_wlm,
    satisfies_afm,
    satisfies_es,
    satisfies_gs,
    satisfies_lm,
    satisfies_wlm,
)


@dataclass(frozen=True)
class TimingModel:
    """Metadata for one timing model.

    Attributes:
        name: registry key.
        display_name: name used in reports/figures.
        decision_rounds: consecutive satisfying rounds needed for global
            decision by the fastest algorithm for this model.
        needs_leader: whether the predicate takes a leader argument.
        stable_message_complexity: ``"linear"`` or ``"quadratic"`` — the
            per-round stable-state message complexity of the algorithm.
        hub: for granular models, the statically designated process whose
            outgoing links are sync.  The hub plays the leader role in the
            model's algorithm without requiring an Omega oracle, so
            selection machinery should aim the leader at it.  ``None`` for
            the paper's uniform models.
    """

    name: str
    display_name: str
    decision_rounds: int
    needs_leader: bool
    stable_message_complexity: str
    _predicate: Callable[..., bool]
    _batch_predicate: Optional[Callable[..., np.ndarray]] = None
    hub: Optional[int] = None

    def satisfied(
        self,
        matrix: np.ndarray,
        leader: Optional[int] = None,
        correct: Optional[Iterable[int]] = None,
    ) -> bool:
        """Does this round matrix satisfy the model?"""
        if self.needs_leader:
            if leader is None:
                raise ValueError(f"model {self.name} requires a leader")
            return self._predicate(matrix, leader, correct)
        return self._predicate(matrix, correct)

    def satisfied_batch(
        self,
        matrices: np.ndarray,
        leader: Optional[int] = None,
        correct: Optional[Iterable[int]] = None,
    ) -> np.ndarray:
        """Per-round satisfaction over a ``(rounds, n, n)`` stack.

        Uses the model's vectorized predicate when one is registered;
        otherwise falls back to mapping :meth:`satisfied` per round.
        Either way the result is bit-identical to the scalar loop.
        """
        matrices = np.asarray(matrices)
        if self._batch_predicate is None:
            return np.array(
                [
                    self.satisfied(matrix, leader=leader, correct=correct)
                    for matrix in matrices
                ],
                dtype=bool,
            )
        if self.needs_leader:
            if leader is None:
                raise ValueError(f"model {self.name} requires a leader")
            return self._batch_predicate(matrices, leader, correct)
        return self._batch_predicate(matrices, correct)


MODELS: dict[str, TimingModel] = {
    "ES": TimingModel(
        name="ES",
        display_name="ES",
        decision_rounds=3,
        needs_leader=False,
        stable_message_complexity="quadratic",
        _predicate=satisfies_es,
        _batch_predicate=batch_satisfies_es,
    ),
    "LM": TimingModel(
        name="LM",
        display_name="◊LM",
        decision_rounds=3,
        needs_leader=True,
        stable_message_complexity="quadratic",
        _predicate=satisfies_lm,
        _batch_predicate=batch_satisfies_lm,
    ),
    "WLM": TimingModel(
        name="WLM",
        display_name="◊WLM",
        decision_rounds=4,
        needs_leader=True,
        stable_message_complexity="linear",
        _predicate=satisfies_wlm,
        _batch_predicate=batch_satisfies_wlm,
    ),
    "WLM_SIM": TimingModel(
        name="WLM_SIM",
        display_name="simulated ◊WLM",
        decision_rounds=7,
        needs_leader=True,
        stable_message_complexity="quadratic",
        _predicate=satisfies_wlm,
        _batch_predicate=batch_satisfies_wlm,
    ),
    "AFM": TimingModel(
        name="AFM",
        display_name="◊AFM",
        decision_rounds=5,
        needs_leader=False,
        stable_message_complexity="quadratic",
        _predicate=satisfies_afm,
        _batch_predicate=batch_satisfies_afm,
    ),
    # Granular Synchrony (arxiv 2408.12853) with the canonical hub-based
    # assumption matrix: the hub's outgoing links are sync and every
    # process has psync incoming links from its n//2 ring predecessors.
    # A satisfying round is an eventual-LM round with the statically
    # known hub as leader, so the 3-round LM algorithm [19] decides in
    # 3 consecutive satisfying rounds — no Omega wait, the assumption
    # matrix is the leader certificate.
    "GS": TimingModel(
        name="GS",
        display_name="granular",
        decision_rounds=3,
        needs_leader=False,
        stable_message_complexity="quadratic",
        _predicate=satisfies_gs,
        _batch_predicate=batch_satisfies_gs,
        hub=GS_HUB,
    ),
}

#: Number of rounds Algorithm 2 needs when the leader is NOT stable a round
#: early (Theorem 10(a)): 5 instead of 4.
WLM_WORST_CASE_ROUNDS = 5


def get_model(name: str) -> TimingModel:
    """Look up a model by registry key (case-insensitive)."""
    key = name.upper()
    if key not in MODELS:
        raise KeyError(f"unknown timing model {name!r}; known: {sorted(MODELS)}")
    return MODELS[key]


def model_names() -> list[str]:
    """All registry keys: the paper's models in presentation order, then
    the post-paper extensions."""
    return ["ES", "LM", "WLM", "WLM_SIM", "AFM", "GS"]
