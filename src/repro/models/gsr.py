"""Locating stabilization in a trace of round matrices.

Two notions are used by the evaluation:

- **GSR of a trace** — the first round from which *every* remaining round
  satisfies the model (the paper's Global Stabilization Round, evaluated
  over a finite trace).
- **First satisfying window** — from a given start round, the first run of
  ``c`` consecutive satisfying rounds.  This is how Section 5.3 measures
  decision time: from each random starting point, consensus under model
  ``M`` with a ``c``-round algorithm completes at the end of the first
  ``c``-window of ``M``-satisfying rounds.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.models.registry import TimingModel, get_model


def _satisfaction_vector(
    matrices: Sequence[np.ndarray],
    model: TimingModel | str,
    leader: Optional[int] = None,
    correct: Optional[Iterable[int]] = None,
) -> list[bool]:
    if isinstance(model, str):
        model = get_model(model)
    return [model.satisfied(matrix, leader=leader, correct=correct) for matrix in matrices]


def gsr_of_trace(
    matrices: Sequence[np.ndarray],
    model: TimingModel | str,
    leader: Optional[int] = None,
    correct: Optional[Iterable[int]] = None,
) -> Optional[int]:
    """First index ``k`` such that rounds ``k..end`` all satisfy the model.

    Returns ``None`` if even the final round fails the predicate (no GSR
    within the trace).  Indices are 0-based positions in ``matrices``.
    """
    satisfied = _satisfaction_vector(matrices, model, leader, correct)
    gsr: Optional[int] = None
    for index in range(len(satisfied) - 1, -1, -1):
        if satisfied[index]:
            gsr = index
        else:
            break
    return gsr


def first_satisfying_window(
    matrices: Sequence[np.ndarray],
    model: TimingModel | str,
    window: int,
    start: int = 0,
    leader: Optional[int] = None,
    correct: Optional[Iterable[int]] = None,
) -> Optional[int]:
    """First index ``k >= start`` beginning ``window`` consecutive satisfying rounds.

    Returns the start index of the window, or ``None`` if no such window
    exists in the trace.  With a ``c``-round algorithm, global decision
    happens at round ``k + window - 1``; the number of rounds consumed from
    ``start`` is ``k + window - start``.
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    if start < 0:
        raise ValueError("start must be non-negative")
    satisfied = _satisfaction_vector(matrices, model, leader, correct)
    run_length = 0
    for index in range(start, len(satisfied)):
        run_length = run_length + 1 if satisfied[index] else 0
        if run_length >= window:
            return index - window + 1
    return None


def rounds_to_decision(
    matrices: Sequence[np.ndarray],
    model: TimingModel | str,
    start: int = 0,
    window: Optional[int] = None,
    leader: Optional[int] = None,
    correct: Optional[Iterable[int]] = None,
) -> Optional[int]:
    """Rounds consumed from ``start`` until global decision under ``model``.

    This is the measured analogue of the paper's :math:`D_M`: the count of
    rounds from ``start`` through the end of the first ``window``-length
    satisfying run.  ``window`` defaults to the model's registered
    ``decision_rounds``.
    """
    if isinstance(model, str):
        model = get_model(model)
    if window is None:
        window = model.decision_rounds
    begin = first_satisfying_window(
        matrices, model, window, start=start, leader=leader, correct=correct
    )
    if begin is None:
        return None
    return begin + window - start
