"""Minimally edit a round matrix so it satisfies a timing model.

Lockstep experiments force stability from a chosen GSR: pre-GSR rounds use
a raw sampled matrix; from GSR on, each sampled matrix is *repaired* — just
enough links flipped to timely for the model's predicate to hold.  Repair
only ever turns entries on, so satisfaction of any weaker property is
preserved (model predicates are monotone in the matrix).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

import numpy as np

from repro.models.matrix import majority, validate_matrix
from repro.models.registry import TimingModel, get_model
from repro.sim.rng import derive_seed


def _repair_row_to_majority(
    matrix: np.ndarray,
    row: int,
    maj: int,
    rng: np.random.Generator,
    columns: np.ndarray,
) -> None:
    """Turn on random entries of ``row`` (within ``columns``) until at
    least ``maj`` of those columns are on."""
    deficit = maj - int(np.count_nonzero(matrix[row, columns]))
    if deficit <= 0:
        return
    zeros = columns[~matrix[row, columns]]
    chosen = rng.choice(zeros, size=deficit, replace=False)
    matrix[row, chosen] = True


def _repair_col_to_majority(
    matrix: np.ndarray,
    col: int,
    maj: int,
    rng: np.random.Generator,
    rows: np.ndarray,
) -> None:
    """Turn on random entries of ``col`` (within ``rows``) until at least
    ``maj`` of those rows are on."""
    deficit = maj - int(np.count_nonzero(matrix[rows, col]))
    if deficit <= 0:
        return
    zeros = rows[~matrix[rows, col]]
    chosen = rng.choice(zeros, size=deficit, replace=False)
    matrix[chosen, col] = True


def repair_to_satisfy(
    matrix: np.ndarray,
    model: TimingModel | str,
    leader: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    correct: Optional[Iterable[int]] = None,
) -> np.ndarray:
    """Return a copy of ``matrix`` edited (entries turned on) to satisfy ``model``.

    Args:
        matrix: a sampled round matrix.
        model: registry key or :class:`TimingModel`.
        leader: required for leader-based models.
        rng: source of randomness for choosing which links to fix.  When
            omitted, the default seed is derived from the call's own
            content (the matrix plus the model/leader/correct arguments)
            rather than a fixed constant: a shared ``default_rng(0)``
            handed every repaired round of a stability sweep the *same*
            link choices, correlating the forced links across all
            post-GSR rounds.  Content-derived seeding stays reproducible
            — the same call repairs the same way — while distinct rounds
            decorrelate.
        correct: the correct (never-crashing) processes.  The models'
            properties count links *from correct processes*, so in a run
            with crashes the forced links must connect correct processes —
            a dead sender's link satisfies nothing.  Defaults to everyone.
    """
    if isinstance(model, str):
        model = get_model(model)
    validate_matrix(matrix)
    if correct is not None:
        correct = sorted(set(correct))
    if rng is None:
        digest = hashlib.sha256(
            np.ascontiguousarray(matrix).tobytes()
        ).hexdigest()
        live_key = "all" if correct is None else ",".join(map(str, correct))
        name = f"repair:{digest}:{model.name}:{leader}:{live_key}"
        rng = np.random.default_rng(derive_seed(0, name))

    repaired = matrix.copy()
    n = repaired.shape[0]
    maj = majority(n)
    if correct is None:
        live = np.arange(n)
    else:
        live = np.asarray(correct, dtype=int)
        if live.size < maj:
            raise ValueError(
                f"cannot satisfy a majority of {maj} with only {live.size} "
                f"correct processes"
            )

    if model.name == "ES":
        repaired[:, :] = True
        return repaired

    if model.name in ("WLM", "WLM_SIM"):
        if leader is None:
            raise ValueError(f"{model.name} repair requires a leader")
        repaired[:, leader] = True  # leader is an n-source
        _repair_row_to_majority(repaired, leader, maj, rng, live)
        return repaired

    if model.name == "LM":
        if leader is None:
            raise ValueError("LM repair requires a leader")
        repaired[:, leader] = True  # leader is an n-source
        for row in live:
            _repair_row_to_majority(repaired, row, maj, rng, live)
        return repaired

    if model.name == "GS":
        # The predicate demands every *guaranteed* link between correct
        # processes be timely — the minimal repair is exactly that set,
        # no randomness involved.
        from repro.models.properties import (
            canonical_granular_assumptions,
            granular_guaranteed,
        )

        guaranteed = granular_guaranteed(canonical_granular_assumptions(n))
        block = np.ix_(live, live)
        repaired[block] |= guaranteed[block]
        return repaired

    if model.name == "AFM":
        # Turning entries on never breaks a row/column that is already
        # satisfied, so one pass over rows then columns suffices.
        for row in live:
            _repair_row_to_majority(repaired, row, maj, rng, live)
        for col in live:
            _repair_col_to_majority(repaired, col, maj, rng, live)
        return repaired

    raise KeyError(f"no repair strategy for model {model.name}")
