"""Round-based timeliness predicates.

The building blocks are the paper's Section 2 properties:

- ``p`` is a *j-source* in round ``k`` if there are ``j`` processes to
  which it has timely outgoing links (its own link counts; recipients need
  not be correct).
- A correct ``p`` is a *j-destination* in round ``k`` if it has ``j``
  timely incoming links from correct processes (again counting itself).

A round satisfies a model if the required per-process properties all hold
for that round's matrix.  ``correct`` defaults to "everyone", which is the
relevant case: the paper evaluates stable periods, where by definition no
process fails.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.models.matrix import majority


def _correct_indices(n: int, correct: Optional[Iterable[int]]) -> np.ndarray:
    if correct is None:
        return np.arange(n)
    indices = np.asarray(sorted(set(correct)), dtype=int)
    if indices.size == 0:
        raise ValueError("correct set must not be empty")
    if indices.min() < 0 or indices.max() >= n:
        raise ValueError(f"correct set {indices} out of range for n={n}")
    return indices


def is_j_source(matrix: np.ndarray, pid: int, j: int) -> bool:
    """Does ``pid`` have timely outgoing links to at least ``j`` processes?

    Recipients' correctness is irrelevant (paper, Section 2), so the whole
    column is counted.  The diagonal entry (self-link) is part of the count.
    """
    return int(np.count_nonzero(matrix[:, pid])) >= j


def is_j_destination(
    matrix: np.ndarray,
    pid: int,
    j: int,
    correct: Optional[Iterable[int]] = None,
) -> bool:
    """Does ``pid`` have timely incoming links from at least ``j`` correct processes?"""
    n = matrix.shape[0]
    senders = _correct_indices(n, correct)
    return int(np.count_nonzero(matrix[pid, senders])) >= j


def satisfies_es(matrix: np.ndarray, correct: Optional[Iterable[int]] = None) -> bool:
    """ES: all links between correct processes are timely."""
    n = matrix.shape[0]
    idx = _correct_indices(n, correct)
    return bool(np.all(matrix[np.ix_(idx, idx)]))


def satisfies_lm(
    matrix: np.ndarray,
    leader: int,
    correct: Optional[Iterable[int]] = None,
) -> bool:
    """Eventual LM: leader is an n-source; every correct process is a
    (majority)-destination.
    """
    n = matrix.shape[0]
    idx = _correct_indices(n, correct)
    maj = majority(n)
    # Leader's message reaches every correct process.
    if not bool(np.all(matrix[idx, leader])):
        return False
    # Every correct process hears from a majority of correct processes.
    counts = np.count_nonzero(matrix[np.ix_(idx, idx)], axis=1)
    return bool(np.all(counts >= maj))


def satisfies_wlm(
    matrix: np.ndarray,
    leader: int,
    correct: Optional[Iterable[int]] = None,
) -> bool:
    """Eventual WLM (the paper's new model): leader is an n-source and a
    (majority)-destination.  Only the leader's row and column matter.
    """
    n = matrix.shape[0]
    idx = _correct_indices(n, correct)
    maj = majority(n)
    if not bool(np.all(matrix[idx, leader])):
        return False
    return int(np.count_nonzero(matrix[leader, idx])) >= maj


def satisfies_afm(matrix: np.ndarray, correct: Optional[Iterable[int]] = None) -> bool:
    """Eventual AFM (simplified, per the paper): every correct process is a
    (majority)-destination and a (majority)-source.
    """
    n = matrix.shape[0]
    idx = _correct_indices(n, correct)
    maj = majority(n)
    in_counts = np.count_nonzero(matrix[np.ix_(idx, idx)], axis=1)
    if not bool(np.all(in_counts >= maj)):
        return False
    # Sources may count arbitrary recipients (not only correct ones).
    out_counts = np.count_nonzero(matrix[:, idx], axis=0)
    return bool(np.all(out_counts >= maj))


# ----------------------------------------------------------------------
# Batched forms: one call evaluates every round of a trace.
#
# Each ``batch_satisfies_*`` takes a stack of round matrices with shape
# ``(rounds, n, n)`` and returns a boolean vector of length ``rounds``,
# bit-identical to mapping the scalar predicate over the stack but
# without the per-round Python loop (the measurement hot path evaluates
# tens of thousands of rounds per sweep).
# ----------------------------------------------------------------------
def batch_satisfies_es(
    matrices: np.ndarray, correct: Optional[Iterable[int]] = None
) -> np.ndarray:
    """Vectorized :func:`satisfies_es` over a ``(rounds, n, n)`` stack."""
    idx = _correct_indices(matrices.shape[1], correct)
    return matrices[:, idx][:, :, idx].all(axis=(1, 2))


def batch_satisfies_lm(
    matrices: np.ndarray,
    leader: int,
    correct: Optional[Iterable[int]] = None,
) -> np.ndarray:
    """Vectorized :func:`satisfies_lm` over a ``(rounds, n, n)`` stack."""
    n = matrices.shape[1]
    idx = _correct_indices(n, correct)
    maj = majority(n)
    leader_reaches_all = matrices[:, idx, leader].all(axis=1)
    in_counts = np.count_nonzero(matrices[:, idx][:, :, idx], axis=2)
    return leader_reaches_all & (in_counts >= maj).all(axis=1)


def batch_satisfies_wlm(
    matrices: np.ndarray,
    leader: int,
    correct: Optional[Iterable[int]] = None,
) -> np.ndarray:
    """Vectorized :func:`satisfies_wlm` over a ``(rounds, n, n)`` stack."""
    n = matrices.shape[1]
    idx = _correct_indices(n, correct)
    maj = majority(n)
    leader_reaches_all = matrices[:, idx, leader].all(axis=1)
    leader_hears = np.count_nonzero(matrices[:, leader, :][:, idx], axis=1) >= maj
    return leader_reaches_all & leader_hears


def batch_satisfies_afm(
    matrices: np.ndarray, correct: Optional[Iterable[int]] = None
) -> np.ndarray:
    """Vectorized :func:`satisfies_afm` over a ``(rounds, n, n)`` stack."""
    n = matrices.shape[1]
    idx = _correct_indices(n, correct)
    maj = majority(n)
    in_counts = np.count_nonzero(matrices[:, idx][:, :, idx], axis=2)
    out_counts = np.count_nonzero(matrices[:, :, idx], axis=1)
    return (in_counts >= maj).all(axis=1) & (out_counts >= maj).all(axis=1)


# ----------------------------------------------------------------------
# Granular Synchrony (arxiv 2408.12853): instead of one network-wide
# assumption, each directed link carries its own contract — ``sync``
# (always timely), ``psync`` (timely after an unknown stabilization
# time, with a known bound), or ``async`` (no guarantee).  A round
# satisfies the granular model when every *guaranteed* (sync or psync)
# link between correct processes is timely; async links are best-effort
# and never required.
#
# The canonical assumption matrix is hub-based: a designated hub's
# outgoing links are sync, and every process additionally has psync
# incoming links from the ``n // 2`` processes preceding it on a ring.
# Counting the self-link, every process is therefore guaranteed to be a
# majority-destination, and the hub is guaranteed to be an n-source —
# so a satisfying granular round is also an eventual-LM round with the
# statically known hub as leader.  That is what lets the 3-round LM
# algorithm decide under granular synchrony without waiting on an
# Omega failure detector: the assumption matrix itself is the leader
# certificate.
# ----------------------------------------------------------------------

#: Per-link assumption codes, ordered by strength.
LINK_ASYNC = 0
LINK_PSYNC = 1
LINK_SYNC = 2

#: The canonical granular matrix designates process 0 as the sync hub.
GS_HUB = 0


@lru_cache(maxsize=None)
def canonical_granular_assumptions(n: int, hub: int = GS_HUB) -> np.ndarray:
    """The canonical hub-based assumption matrix for ``n`` processes.

    Entry ``[dst, src]`` follows the delivery-matrix orientation.  The
    diagonal and the hub's outgoing column are ``sync``; each process's
    incoming links from its ``n // 2`` ring predecessors are ``psync``;
    everything else is ``async``.  The returned array is read-only (it
    is cached and shared between callers).
    """
    if not 0 <= hub < n:
        raise ValueError(f"hub {hub} out of range for n={n}")
    assumptions = np.full((n, n), LINK_ASYNC, dtype=np.int8)
    dst = np.arange(n)
    for k in range(1, n // 2 + 1):
        assumptions[dst, (dst - k) % n] = LINK_PSYNC
    assumptions[:, hub] = LINK_SYNC
    np.fill_diagonal(assumptions, LINK_SYNC)
    assumptions.setflags(write=False)
    return assumptions


def granular_guaranteed(assumptions: np.ndarray) -> np.ndarray:
    """Boolean mask of the links the granular model requires to be timely."""
    return np.asarray(assumptions) >= LINK_PSYNC


@lru_cache(maxsize=None)
def _canonical_guaranteed(n: int) -> np.ndarray:
    mask = granular_guaranteed(canonical_granular_assumptions(n)).copy()
    mask.setflags(write=False)
    return mask


def granular_link_count(n: int) -> int:
    """Number of guaranteed entries in the canonical matrix (diagonal included).

    This is the exponent of the closed form ``P_GS = p ** granular_link_count(n)``
    under IID link timeliness, mirroring ``P_ES = p ** n**2``.
    """
    return int(np.count_nonzero(_canonical_guaranteed(n)))


def satisfies_granular(
    matrix: np.ndarray,
    guaranteed: np.ndarray,
    correct: Optional[Iterable[int]] = None,
) -> bool:
    """GS against an explicit guaranteed-link mask: every guaranteed link
    between correct processes is timely.
    """
    n = matrix.shape[0]
    idx = _correct_indices(n, correct)
    sub = np.ix_(idx, idx)
    return bool(np.all(matrix[sub][guaranteed[sub]]))


def batch_satisfies_granular(
    matrices: np.ndarray,
    guaranteed: np.ndarray,
    correct: Optional[Iterable[int]] = None,
) -> np.ndarray:
    """Vectorized :func:`satisfies_granular` over a ``(rounds, n, n)`` stack."""
    n = matrices.shape[1]
    idx = _correct_indices(n, correct)
    mask = guaranteed[np.ix_(idx, idx)]
    sub = matrices[:, idx][:, :, idx]
    return sub[:, mask].all(axis=1)


def satisfies_gs(matrix: np.ndarray, correct: Optional[Iterable[int]] = None) -> bool:
    """GS with the canonical hub-based assumption matrix for this ``n``."""
    return satisfies_granular(matrix, _canonical_guaranteed(matrix.shape[0]), correct)


def batch_satisfies_gs(
    matrices: np.ndarray, correct: Optional[Iterable[int]] = None
) -> np.ndarray:
    """Vectorized :func:`satisfies_gs` over a ``(rounds, n, n)`` stack."""
    return batch_satisfies_granular(
        matrices, _canonical_guaranteed(matrices.shape[1]), correct
    )
