"""Differential validation: one scenario, two stacks, diffed observables.

The repo computes every headline quantity twice — once on the idealized
synchronized-window path (sampled latency trace, ``timely_matrices``,
batch model predicates) and once through the event-driven protocol stack
(:class:`~repro.sync.round_sync.SyncRun` over the simulated transport).
The figures lean on the idealization; Section 5.1's protocol is what
justifies it.  This module makes that justification executable: drive
one ``(network profile, FaultPlan, seed)`` scenario through both stacks
and diff what comes out —

- the measured timely fraction ``p``,
- ``P_M`` for each timing model (ES, AFM, ◊LM, ◊WLM),
- the measured decision rounds ``D_WLM``,
- the round-synchronization error (event path against the idealization's
  implicit zero),

each within a stated tolerance, while :mod:`repro.check.invariants`
checkers ride along on consensus runs through both stacks.  A separate
cross-check pits the Monte-Carlo estimators against the Section 4
closed forms on a grid of ``p`` values.

Tolerances are deliberately loose statistical bounds, not equality: the
two stacks share a latency trace seed but cut rounds differently (local
timers, jumps, shortened joins), so their matrices agree in distribution,
not bit-for-bit.  The bands follow the precedents of
``tests/integration/test_sync_vs_matrix.py``, widened where fault plans
add variance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis import equations
from repro.analysis.montecarlo import estimate_p_model
from repro.check.invariants import RunView, Violation, default_suite
from repro.check.mutation import agreement_violation_run
from repro.core.wlm import WlmConsensus
from repro.experiments.decision import decision_stats_from_vector
from repro.experiments.measurement import (
    model_satisfaction,
    sample_latency_trace,
    satisfaction_vector,
    timely_matrices,
)
from repro.faults.adversary import StabilityWindowAdversary
from repro.faults.lockstep import inject_lockstep
from repro.faults.plan import Crash, FaultPlan, LossBurst, Partition, SlowNode
from repro.giraf.oracle import FixedLeaderOracle, NullOracle, Oracle
from repro.giraf.runner import LockstepRunner
from repro.giraf.schedule import MatrixSchedule
from repro.models.registry import get_model
from repro.net.base import LatencyModel
from repro.net.granular import GranularProfile
from repro.net.hetero import HeterogeneousNetwork
from repro.net.lan import lan_profile
from repro.net.ping import measure_latency_table, select_leader
from repro.net.planetlab import planetlab_profile
from repro.obs.registry import MetricsRegistry
from repro.oracles.omega import HeartbeatOmega
from repro.sim.rng import derive_seed
from repro.sim.transport import Transport
from repro.sync.batch import RESULT_FIELDS, result_divergences
from repro.sync.heartbeat import HeartbeatAlgorithm
from repro.sync.round_sync import SyncRun

#: The models whose ``P_M`` both stacks must agree on.  GS is the
#: post-paper Granular Synchrony model (canonical hub-based assumption
#: matrix); its closed form is exact, like ES's.
DIFF_MODELS = ("ES", "AFM", "LM", "WLM", "GS")

#: Warm-up rounds excluded from the statistics on both paths (start
#: effects: staggered first rounds, empty inboxes), matching the ``[5:]``
#: slice of the sync-vs-matrix integration tests.
WARMUP_ROUNDS = 5

#: Tolerance on the measured timely fraction ``p`` (the integration test
#: uses 0.06 for the clean WAN case; fault plans add alignment noise).
P_TOLERANCE = 0.10

#: Tolerance on a per-model ``P_M`` (integration precedent: 0.22).
PM_TOLERANCE = 0.25

#: Tolerance on the event path's mean round-sync error, as a fraction of
#: the timeout.  Jump-shortened rounds legitimately start early by up to
#: ``timeout - L_i[src]``, so a fraction of the timeout is the natural
#: unit; 0 would only hold for perfectly synchronized starts.
SYNC_TOLERANCE = 0.6


@dataclass(frozen=True)
class DiffRow:
    """One diffed observable: a value from each stack plus the tolerance.

    ``kind`` is ``"abs"`` (agree within ``tolerance``) or
    ``"lower-bound"`` (``event >= lockstep - tolerance`` — used where the
    reference value is a provable lower bound, e.g. equation (9) for
    AFM).  Two NaNs agree (both sides censored); a single NaN is a
    disagreement.
    """

    quantity: str
    lockstep: float
    event: float
    tolerance: float
    kind: str = "abs"

    @property
    def delta(self) -> float:
        return self.event - self.lockstep

    @property
    def ok(self) -> bool:
        lock_nan = math.isnan(self.lockstep)
        event_nan = math.isnan(self.event)
        if lock_nan or event_nan:
            return lock_nan and event_nan
        if self.kind == "lower-bound":
            return self.event >= self.lockstep - self.tolerance
        return abs(self.event - self.lockstep) <= self.tolerance


@dataclass
class DifferentialResult:
    """Everything one differential scenario produced."""

    profile: str
    fault: str
    timeout: float
    rounds: int
    seed: int
    leader: int
    rows: list[DiffRow] = field(default_factory=list)
    #: ``(stack, violation)`` pairs from the consensus safety runs, where
    #: ``stack`` is ``"lockstep"`` or ``"event"``.
    violations: list[tuple[str, Violation]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows) and not self.violations


def canonical_diff_plan(n: int, rounds: int, seed: int = 0) -> FaultPlan:
    """The standard transient-fault scenario of the conformance runs.

    Recoverable crash, loss burst, degraded node — spread over the middle
    of the run, all transient, so ``correct()`` stays everyone and both
    stacks keep their round counts aligned (a permanent crash would make
    the event path's observation window a per-scenario quantity).
    """
    if rounds < 40:
        raise ValueError("the canonical plan needs at least 40 rounds")
    third = max(8, rounds // 3)
    return FaultPlan(
        n=n,
        crashes=(Crash(pid=min(2, n - 1), at_round=third, recover_round=third + 4),),
        loss_bursts=(LossBurst(start_round=third + 8, end_round=third + 10, drop_prob=0.9),),
        slow_nodes=(
            SlowNode(
                pid=n - 1,
                start_round=third + 14,
                end_round=third + 18,
                factor=3.0,
                drop_prob=0.5,
            ),
        ),
        seed=derive_seed(seed, "check:canonical-plan"),
    )


def canonical_adversary_plan(n: int, rounds: int, seed: int = 0) -> FaultPlan:
    """The standard eventually-stabilizing-adversary scenario.

    GSR sits at a third of the run: the first third grants only short
    vertex-stable root-component windows (full suppression in between),
    the remaining two thirds are clean — long enough for the decision
    statistics of both stacks to stabilize.  Batch-eligible by
    construction (loss bursts and partitions only).
    """
    if rounds < 60:
        raise ValueError("the canonical adversary plan needs at least 60 rounds")
    return StabilityWindowAdversary(
        n=n,
        gsr_round=max(17, rounds // 3),
        window_length=3,
        window_period=8,
        seed=derive_seed(seed, "check:adversary"),
    ).to_plan()


def _consensus_safety(
    n: int,
    leader: int,
    ideal_matrices: np.ndarray,
    profile_factory: Callable[..., LatencyModel],
    table: np.ndarray,
    timeout: float,
    rounds: int,
    seed: int,
    name: str,
    plan: Optional[FaultPlan],
    metrics: Optional[MetricsRegistry],
) -> list[tuple[str, Violation]]:
    """Run Algorithm 2 through both stacks with the safety checkers on.

    The lockstep side replays the scenario's *unfaulted* idealized
    matrices through :func:`inject_lockstep` (so the plan perturbs it the
    canonical way); the event side runs the full protocol with the plan
    installed on the wire.  Neither run is required to decide — safety
    invariants are unconditional — but on these profiles they normally
    do, which is what makes the check non-vacuous.
    """

    def factory(pid: int) -> WlmConsensus:
        return WlmConsensus(pid, n, f"value-{pid}")

    violations: list[tuple[str, Violation]] = []

    lock_suite = default_suite(metrics=metrics)
    base = MatrixSchedule([np.array(m) for m in ideal_matrices])
    oracle: Oracle = FixedLeaderOracle(leader)
    if plan is not None:
        schedule, oracle, crash_plan = inject_lockstep(plan, base, oracle)
    else:
        schedule, crash_plan = base, None
    runner = LockstepRunner(
        n, factory, oracle, schedule, crash_plan=crash_plan,
        observers=[lock_suite],
    )
    lock_run = runner.run(
        max_rounds=rounds,
        stop_on_global_decision=True,
        extra_rounds_after_decision=2,
    )
    lock_suite.finish(RunView.from_lockstep(lock_run))
    violations.extend(("lockstep", v) for v in lock_suite.violations)

    event_suite = default_suite(metrics=metrics)
    profile = profile_factory(seed=derive_seed(seed, f"check:{name}:consensus"))
    sync = SyncRun(
        n,
        factory,
        FixedLeaderOracle(leader),
        lambda sim: Transport(sim, profile),
        timeout=timeout,
        latency_table=table,
        max_rounds=rounds,
        fault_plan=plan,
        metrics=metrics,
        observers=[event_suite],
    )
    event_suite.finish(RunView.from_sync(sync.run()))
    violations.extend(("event", v) for v in event_suite.violations)
    return violations


def differential_run(
    profile_name: str,
    profile_factory: Callable[..., LatencyModel],
    timeout: float,
    rounds: int = 120,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    start_points: int = 12,
    metrics: Optional[MetricsRegistry] = None,
    fault_name: Optional[str] = None,
) -> DifferentialResult:
    """Drive one scenario through both stacks and diff the observables.

    ``profile_factory`` must accept a ``seed`` keyword and return a
    :class:`~repro.net.base.LatencyModel`; both stacks consume the *same*
    trace seed (the event transport draws per-link substreams from it,
    the lockstep path samples the batch trace), so differences reflect
    the round-cutting protocol, not different networks.
    """
    ping_model = profile_factory(seed=derive_seed(seed, f"check:{profile_name}:ping"))
    n = ping_model.n
    table = measure_latency_table(ping_model, pings=15)
    leader = select_leader(table)
    trace_seed = derive_seed(seed, f"check:{profile_name}:trace")

    # Event path: the heartbeat probe stream through the real protocol.
    sync = SyncRun(
        n,
        lambda pid: HeartbeatAlgorithm(pid, n),
        NullOracle(),
        lambda sim: Transport(sim, profile_factory(seed=trace_seed)),
        timeout=timeout,
        latency_table=table,
        max_rounds=rounds,
        fault_plan=plan,
        metrics=metrics,
    )
    event_result = sync.run()

    # Lockstep path: same trace seed, synchronized windows, plan masks.
    trace = sample_latency_trace(profile_factory(seed=trace_seed), rounds, timeout)
    ideal = timely_matrices(trace, timeout)
    faulted = plan.apply_to_matrices(ideal) if plan is not None else ideal

    depth = min(len(event_result.matrices), len(faulted))
    if depth <= WARMUP_ROUNDS + 20:
        raise ValueError(
            f"scenario too short to compare: only {depth} common rounds"
        )
    lock_m = np.asarray(faulted[WARMUP_ROUNDS:depth])
    event_m = np.asarray(event_result.matrices[WARMUP_ROUNDS:depth])

    rows: list[DiffRow] = []
    off_diag = ~np.eye(n, dtype=bool)
    rows.append(
        DiffRow(
            "measured p",
            float(lock_m[:, off_diag].mean()),
            float(event_m[:, off_diag].mean()),
            P_TOLERANCE,
        )
    )
    for model_name in DIFF_MODELS:
        model = get_model(model_name)
        model_leader = leader if model.needs_leader else None
        rows.append(
            DiffRow(
                f"P_{model_name}",
                model_satisfaction(lock_m, model, leader=model_leader),
                model_satisfaction(event_m, model, leader=model_leader),
                PM_TOLERANCE,
            )
        )

    # Measured decision rounds for the headline model (◊WLM, window 4).
    window = equations.DECISION_ROUNDS["WLM"]
    lock_stats = decision_stats_from_vector(
        satisfaction_vector(lock_m, "WLM", leader=leader),
        window=window,
        round_length=timeout,
        start_points=start_points,
    )
    event_stats = decision_stats_from_vector(
        satisfaction_vector(event_m, "WLM", leader=leader),
        window=window,
        round_length=timeout,
        start_points=start_points,
    )
    lock_mean = lock_stats.mean_rounds
    d_tolerance = 6.0 if math.isnan(lock_mean) else max(6.0, 0.8 * lock_mean)
    rows.append(
        DiffRow("D_WLM rounds", lock_mean, event_stats.mean_rounds, d_tolerance)
    )

    # Round synchronization: the idealization assumes perfectly aligned
    # windows; the protocol must stay within a fraction of the timeout.
    errors = np.asarray(event_result.sync_error[WARMUP_ROUNDS:depth], dtype=float)
    finite = errors[~np.isnan(errors)]
    sync_ratio = float(finite.mean() / timeout) if finite.size else float("nan")
    rows.append(DiffRow("sync error / timeout", 0.0, sync_ratio, SYNC_TOLERANCE))

    violations = _consensus_safety(
        n=n,
        leader=leader,
        ideal_matrices=ideal,
        profile_factory=profile_factory,
        table=table,
        timeout=timeout,
        rounds=rounds,
        seed=seed,
        name=profile_name,
        plan=plan,
        metrics=metrics,
    )

    if fault_name is None:
        fault_name = "canonical" if plan is not None else "none"
    return DifferentialResult(
        profile=profile_name,
        fault=fault_name,
        timeout=timeout,
        rounds=rounds,
        seed=seed,
        leader=leader,
        rows=rows,
        violations=violations,
    )


# ----------------------------------------------------------------------
# The scalar-vs-batched axis of the event stack.
# ----------------------------------------------------------------------


def canonical_batch_plan(n: int, rounds: int, seed: int = 0) -> FaultPlan:
    """The standard *batch-eligible* fault scenario: permanent crash,
    loss burst, partition, and slow node at round granularity — exactly
    the fault classes the widened fast path covers (no recoveries, no
    clock steps)."""
    if rounds < 40:
        raise ValueError("the canonical batch plan needs at least 40 rounds")
    third = max(8, rounds // 3)
    half = n // 2
    return FaultPlan(
        n=n,
        crashes=(Crash(pid=min(2, (n + 1) // 2 - 1), at_round=third),),
        loss_bursts=(
            LossBurst(
                start_round=third + 8, end_round=third + 10, drop_prob=0.9
            ),
        ),
        partitions=(
            Partition(
                groups=(tuple(range(half)), tuple(range(half, n))),
                start_round=third + 14,
                heal_round=third + 18,
            ),
        ),
        slow_nodes=(
            SlowNode(
                pid=n - 1,
                start_round=third + 22,
                end_round=third + 26,
                factor=3.0,
                drop_prob=0.5,
            ),
        ),
        seed=derive_seed(seed, "check:canonical-batch-plan"),
    )


def _comparable_counters(metrics: MetricsRegistry) -> dict:
    """Counter totals minus the executed-mode bookkeeping, which differs
    between a forced-scalar and a batched run by construction."""
    return {
        key: value
        for key, value in metrics.snapshot()["counters"].items()
        if not key.startswith("sync.executed_mode")
        and not key.startswith("sync.batch_fallback")
    }


def batched_differential_run(
    profile_name: str,
    static_factory: Callable[..., LatencyModel],
    timeout: float,
    rounds: int = 120,
    seed: int = 0,
    dynamic_factory: Optional[Callable[..., LatencyModel]] = None,
    faulted: bool = False,
    adversary: bool = False,
) -> DifferentialResult:
    """Cross-check the two execution paths *within* the event stack.

    Unlike :func:`differential_run` — which compares two different
    idealizations within tolerances — the batched structure-of-arrays
    path (:mod:`repro.sync.batch`) claims **bit identity** with the
    scalar event loop, so every row here carries tolerance ``0.0``: a
    field either matches exactly (``1.0``) or the axis fails (``0.0``).

    ``static_factory`` must build a time-invariant variant of the
    profile (the batch path's eligibility condition);
    ``dynamic_factory``, when given, builds the time-*varying* variant
    and probes the other half of the contract — that such a run falls
    back to the scalar loop and reports why.

    With ``faulted=True`` the twin runs carry the widened fast path's
    full load: the :func:`canonical_batch_plan`, a live metrics registry
    on the run and the transport, and the :class:`HeartbeatOmega`
    detector — and two extra rows assert that the ``repro.obs`` counter
    totals and latency histograms match exactly too.

    With ``adversary=True`` the plan is the
    :func:`canonical_adversary_plan` instead: an eventually stabilizing
    message adversary's loss bursts and stability-window partitions are
    batch-eligible round-granular faults, so its epoch-segmented batched
    execution must also be bit-identical (same metrics/Omega load as the
    canonical faulted run).
    """
    if faulted and adversary:
        raise ValueError("pick one fault scenario per batch-axis run")
    ping_model = static_factory(
        seed=derive_seed(seed, f"check:{profile_name}:ping")
    )
    n = ping_model.n
    table = measure_latency_table(ping_model, pings=15)
    leader = select_leader(table)
    trace_seed = derive_seed(seed, f"check:{profile_name}:batch-axis")
    if adversary:
        plan: Optional[FaultPlan] = canonical_adversary_plan(n, rounds, seed=seed)
    elif faulted:
        plan = canonical_batch_plan(n, rounds, seed=seed)
    else:
        plan = None
    instrumented = plan is not None

    def build(
        factory: Callable[..., LatencyModel],
    ) -> tuple[SyncRun, Optional[MetricsRegistry]]:
        metrics = MetricsRegistry() if instrumented else None
        oracle = (
            HeartbeatOmega(n, metrics=metrics) if instrumented else NullOracle()
        )
        run = SyncRun(
            n,
            lambda pid: HeartbeatAlgorithm(pid, n),
            oracle,
            lambda sim: Transport(
                sim, factory(seed=trace_seed), metrics=metrics
            ),
            timeout=timeout,
            latency_table=table,
            max_rounds=rounds,
            fault_plan=plan,
            metrics=metrics,
        )
        return run, metrics

    scalar_run, scalar_metrics = build(static_factory)
    scalar = scalar_run.run(mode="scalar")
    batched_run, batched_metrics = build(static_factory)
    batched = batched_run.run()

    rows = [
        DiffRow(
            "batch path engaged",
            1.0,
            1.0 if batched_run.executed_mode == "batch" else 0.0,
            0.0,
        )
    ]
    diverged = set(result_divergences(scalar, batched))
    for field_name in RESULT_FIELDS:
        rows.append(
            DiffRow(
                f"identical: {field_name}",
                1.0,
                0.0 if field_name in diverged else 1.0,
                0.0,
            )
        )
    node_state_ok = all(
        a.round_starts == b.round_starts
        and a.round_ends == b.round_ends
        and a.timely_receipts == b.timely_receipts
        and a.crashed_permanently == b.crashed_permanently
        for a, b in zip(scalar_run.nodes, batched_run.nodes)
    )
    rows.append(
        DiffRow("identical: node state", 1.0, 1.0 if node_state_ok else 0.0, 0.0)
    )
    counters_ok = (
        scalar_run.transport.messages_sent == batched_run.transport.messages_sent
        and scalar_run.transport.messages_lost
        == batched_run.transport.messages_lost
    )
    rows.append(
        DiffRow(
            "identical: transport counters",
            1.0,
            1.0 if counters_ok else 0.0,
            0.0,
        )
    )
    if instrumented:
        metrics_ok = _comparable_counters(scalar_metrics) == (
            _comparable_counters(batched_metrics)
        )
        rows.append(
            DiffRow(
                "identical: metric totals",
                1.0,
                1.0 if metrics_ok else 0.0,
                0.0,
            )
        )
        hists_ok = (
            scalar_metrics.snapshot()["histograms"]
            == batched_metrics.snapshot()["histograms"]
        )
        rows.append(
            DiffRow(
                "identical: histograms",
                1.0,
                1.0 if hists_ok else 0.0,
                0.0,
            )
        )
    if dynamic_factory is not None:
        probe, _ = build(dynamic_factory)
        probe.run()
        fell_back = (
            probe.executed_mode == "scalar"
            and probe.fallback_reason is not None
        )
        rows.append(
            DiffRow(
                "dynamic variant falls back",
                1.0,
                1.0 if fell_back else 0.0,
                0.0,
            )
        )

    if adversary:
        fault_label = "adversary-batch"
    elif faulted:
        fault_label = "canonical-batch"
    else:
        fault_label = "none"
    return DifferentialResult(
        profile=f"{profile_name} [scalar-vs-batched]",
        fault=fault_label,
        timeout=timeout,
        rounds=rounds,
        seed=seed,
        leader=leader,
        rows=rows,
    )


def _batched_scenarios(
    n: int = 8,
) -> tuple[
    tuple[
        str,
        Callable[..., LatencyModel],
        Optional[Callable[..., LatencyModel]],
        float,
    ],
    ...,
]:
    """Per conformance profile: the static (batch-eligible) variant and,
    where the profile has one, the dynamic variant that must fall back."""
    return (
        (
            "planetlab-wan",
            lambda seed: planetlab_profile(seed=seed, slow_run_prob=0.0),
            lambda seed: planetlab_profile(seed=seed, slow_run_prob=1.0),
            WAN_TIMEOUT,
        ),
        (
            "lan",
            lambda seed: lan_profile(n=n, seed=seed, slow_node=None),
            lambda seed: lan_profile(n=n, seed=seed),
            LAN_TIMEOUT,
        ),
        (
            "uniform-wan",
            lambda seed: uniform_wan_profile(n=n, seed=seed),
            None,
            UNIFORM_TIMEOUT,
        ),
        (
            "granular-wan",
            lambda seed: granular_wan_profile(n=n, seed=seed),
            # A pending psync stabilization makes the contract
            # time-varying: the batch path must fall back and say why.
            lambda seed: granular_wan_profile(
                n=n, seed=seed, stabilization_time=4.0
            ),
            GRANULAR_TIMEOUT,
        ),
    )


# ----------------------------------------------------------------------
# Monte Carlo versus the closed forms.
# ----------------------------------------------------------------------

_CLOSED_FORMS = {
    "ES": equations.p_es,
    "LM": equations.p_lm,
    "WLM": equations.p_wlm,
    "AFM": equations.p_afm,
    "GS": equations.p_gs,
}


def montecarlo_vs_equations(
    p_grid: Sequence[float] = (0.9, 0.95, 0.99),
    n: int = 5,
    samples: int = 3000,
    seed: int = 0,
    leader: int = 0,
) -> list[DiffRow]:
    """Cross-check :func:`estimate_p_model` against equations (1)-(10).

    ES/◊LM/◊WLM closed forms are exact, so the Monte-Carlo estimate must
    land within a CLT band (4 sigma plus a small floor); equation (9)
    for AFM deliberately drops the row/column dependence and is only a
    lower bound, so its row uses ``kind="lower-bound"``.
    """
    rows: list[DiffRow] = []
    for p in p_grid:
        for model_name in DIFF_MODELS:
            closed = float(np.asarray(_CLOSED_FORMS[model_name](p, n)))
            estimate = estimate_p_model(
                model_name,
                p,
                n,
                samples=samples,
                leader=leader,
                seed=derive_seed(seed, f"check:mc:{model_name}:{p!r}"),
            )
            sigma = math.sqrt(max(closed * (1.0 - closed), 1e-12) / samples)
            tolerance = 4.0 * sigma + 0.01
            rows.append(
                DiffRow(
                    f"P_{model_name}(p={p}, n={n})",
                    closed,
                    estimate,
                    tolerance,
                    kind="lower-bound" if model_name == "AFM" else "abs",
                )
            )
    return rows


# ----------------------------------------------------------------------
# The full conformance sweep.
# ----------------------------------------------------------------------

#: Timeout for the WAN scenario (the paper's PlanetLab knee region).
WAN_TIMEOUT = 0.21
#: Timeout for the LAN scenario (0.9 ms: comfortably above the ~0.1 ms
#: medians, inside the Figure 1(c) grid).
LAN_TIMEOUT = 0.0009
#: Timeout for the uniform mid-latency WAN scenario.
UNIFORM_TIMEOUT = 0.1
#: Timeout for the Granular Synchrony scenario (same regime as the
#: uniform WAN it wraps; the per-link bounds sit well below it).
GRANULAR_TIMEOUT = 0.1
#: The per-link contracts of the conformance granular profile.
GRANULAR_SYNC_BOUND = 0.03
GRANULAR_PSYNC_BOUND = 0.06


def uniform_wan_profile(n: int = 8, seed: int = 0) -> HeterogeneousNetwork:
    """A symmetric mid-latency WAN: ~20-40 ms links, lognormal spread,
    occasional heavy-tail excursions and light loss.

    The third conformance profile deliberately sits — like the two real
    ones — in the regime the Section 5.1 protocol assumes: typical
    latency well below the timeout.  A profile whose latencies fill the
    whole timeout window (e.g. :class:`~repro.net.iid.BernoulliLinkModel`
    at its own timeout) breaks round synchronization *by design* once a
    fault desynchronizes the starts — the jump correction is only as good
    as the latency estimate — so it cannot be used to validate the
    idealization, only to (correctly) watch it degrade.
    """
    spread = 0.020 + 0.010 * (np.add.outer(np.arange(n), np.arange(n)) % 5) / 4.0
    base = (spread + spread.T) / 2.0
    np.fill_diagonal(base, 0.0)
    return HeterogeneousNetwork(
        base=base,
        sigma=np.full((n, n), 0.25),
        tail_prob=np.full((n, n), 0.04),
        tail_shape=1.2,
        loss_prob=np.full((n, n), 0.002),
        seed=seed,
    )


def granular_wan_profile(
    n: int = 8, seed: int = 0, stabilization_time: float = 0.0
) -> GranularProfile:
    """The uniform WAN under the canonical Granular Synchrony contract.

    Sync links (the hub's column) always deliver within
    ``GRANULAR_SYNC_BOUND``; psync links (the ring majority) within
    ``GRANULAR_PSYNC_BOUND`` once ``stabilization_time`` has passed.
    With ``stabilization_time = 0`` the profile is time-invariant and
    batch-eligible; a positive value builds the time-varying variant
    that must fall back to the scalar event loop.
    """
    return GranularProfile(
        uniform_wan_profile(n=n, seed=seed),
        sync_bound=GRANULAR_SYNC_BOUND,
        psync_bound=GRANULAR_PSYNC_BOUND,
        stabilization_time=stabilization_time,
    )


def _scenarios(n: int = 8) -> tuple[tuple[str, Callable[..., LatencyModel], float], ...]:
    """The four network profiles every conformance run covers."""
    return (
        ("planetlab-wan", lambda seed: planetlab_profile(seed=seed), WAN_TIMEOUT),
        ("lan", lambda seed: lan_profile(n=n, seed=seed), LAN_TIMEOUT),
        (
            "uniform-wan",
            lambda seed: uniform_wan_profile(n=n, seed=seed),
            UNIFORM_TIMEOUT,
        ),
        (
            "granular-wan",
            lambda seed: granular_wan_profile(n=n, seed=seed),
            GRANULAR_TIMEOUT,
        ),
    )


@dataclass
class ConformanceReport:
    """Everything :func:`run_conformance` observed."""

    results: list[DifferentialResult] = field(default_factory=list)
    mc_rows: list[DiffRow] = field(default_factory=list)
    #: The scalar-vs-batched axis: bit-identity of the event stack's two
    #: execution paths on each profile's static variant, plus the
    #: fallback probes (see :func:`batched_differential_run`).
    batch_axis: list[DifferentialResult] = field(default_factory=list)
    #: Did the checkers flag the deliberately broken Algorithm 2 variant?
    mutation_detected: bool = False
    #: Did the intact Algorithm 2 survive the same adversarial schedule?
    mutation_clean: bool = False

    @property
    def ok(self) -> bool:
        return (
            all(result.ok for result in self.results)
            and all(result.ok for result in self.batch_axis)
            and all(row.ok for row in self.mc_rows)
            and self.mutation_detected
            and self.mutation_clean
        )


def _mutation_smoke() -> tuple[bool, bool]:
    """The self-test: checkers must fire on the mutant, not on the real
    Algorithm 2, over the same adversarial schedule.

    Deliberately un-metered: the mutant's violation is expected, and
    counting it in ``check.violations`` would make a healthy conformance
    run indistinguishable from a broken one in the telemetry.
    """
    broken_suite = default_suite()
    broken_run = agreement_violation_run(observers=[broken_suite])
    broken_suite.finish(RunView.from_lockstep(broken_run))
    detected = any(
        violation.invariant == "agreement"
        for violation in broken_suite.violations
    )

    clean_suite = default_suite()
    clean_run = agreement_violation_run(
        observers=[clean_suite], algorithm=WlmConsensus
    )
    clean_suite.finish(RunView.from_lockstep(clean_run))
    return detected, clean_suite.ok


def run_conformance(
    seed: int = 0,
    rounds: int = 120,
    mc_samples: int = 3000,
    n: int = 8,
    metrics: Optional[MetricsRegistry] = None,
) -> ConformanceReport:
    """The full conformance sweep: every profile, with and without faults,
    plus the Monte-Carlo cross-check and the mutation self-test."""
    report = ConformanceReport()
    plans = (
        (None, None),
        (canonical_diff_plan(n, rounds, seed=seed), None),
        (canonical_adversary_plan(n, rounds, seed=seed), "adversary"),
    )
    for profile_name, factory, timeout in _scenarios(n):
        for plan, fault_name in plans:
            report.results.append(
                differential_run(
                    profile_name,
                    factory,
                    timeout=timeout,
                    rounds=rounds,
                    seed=seed,
                    plan=plan,
                    metrics=metrics,
                    fault_name=fault_name,
                )
            )
    for profile_name, static, dynamic, timeout in _batched_scenarios(n):
        report.batch_axis.append(
            batched_differential_run(
                profile_name,
                static,
                timeout=timeout,
                rounds=rounds,
                seed=seed,
                dynamic_factory=dynamic,
            )
        )
        # The widened fast path: same profile under the canonical fault
        # plan with live metrics and the Omega detector.  The dynamic
        # fallback probe already ran on the clean axis above.
        report.batch_axis.append(
            batched_differential_run(
                profile_name,
                static,
                timeout=timeout,
                rounds=rounds,
                seed=seed,
                faulted=True,
            )
        )
    # One adversary run on the granular profile proves the stability-window
    # plan's epoch segmentation stays on the bit-identical fast path.
    adversary_name, adversary_static, _, adversary_timeout = _batched_scenarios(
        n
    )[-1]
    report.batch_axis.append(
        batched_differential_run(
            adversary_name,
            adversary_static,
            timeout=adversary_timeout,
            rounds=rounds,
            seed=seed,
            adversary=True,
        )
    )
    report.mc_rows = montecarlo_vs_equations(samples=mc_samples, seed=seed)
    report.mutation_detected, report.mutation_clean = _mutation_smoke()
    return report


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------


def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "-"
    return f"{value:.4f}"


def _render_result(result: DifferentialResult, lines: list[str]) -> None:
    lines.append(
        f"scenario: {result.profile}  faults={result.fault}  "
        f"timeout={result.timeout:g}s  rounds={result.rounds}  "
        f"leader={result.leader}  seed={result.seed}"
    )
    header = (
        f"  {'quantity':<28}{'lockstep':>10}{'event':>10}"
        f"{'delta':>10}{'tol':>8}  status"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for row in result.rows:
        delta = "-" if math.isnan(row.delta) else f"{row.delta:+.4f}"
        lines.append(
            f"  {row.quantity:<28}{_fmt(row.lockstep):>10}"
            f"{_fmt(row.event):>10}{delta:>10}{row.tolerance:>8.3f}  "
            f"{'ok' if row.ok else 'FAIL'}"
        )
    if result.violations:
        lines.append("  invariant violations:")
        for stack, violation in result.violations:
            lines.append(f"    {stack}: {violation}")
    else:
        lines.append("  invariant violations: none")
    lines.append("")


def conformance_report(report: ConformanceReport) -> str:
    """Human-readable conformance summary (written to
    ``benchmarks/results/conformance.txt`` by the tier-2 benchmark)."""
    lines = [
        "Conformance: differential validation of the two execution stacks",
        "=" * 68,
        "",
    ]
    for result in report.results:
        _render_result(result, lines)

    if report.batch_axis:
        lines.append(
            "Scalar vs batched execution of the event stack "
            "(exact equality, tolerance 0)"
        )
        lines.append("-" * 68)
        for result in report.batch_axis:
            _render_result(result, lines)

    lines.append("Monte Carlo vs closed forms (equations (1)-(10))")
    lines.append("-" * 48)
    for row in report.mc_rows:
        relation = ">=" if row.kind == "lower-bound" else "~="
        lines.append(
            f"  {row.quantity:<24} closed={_fmt(row.lockstep):>8}  "
            f"mc={_fmt(row.event):>8}  ({relation} within {row.tolerance:.4f})  "
            f"{'ok' if row.ok else 'FAIL'}"
        )
    lines.append("")
    lines.append(
        "mutation self-test: broken Algorithm 2 detected="
        f"{'yes' if report.mutation_detected else 'NO'}, "
        f"intact Algorithm 2 clean={'yes' if report.mutation_clean else 'NO'}"
    )
    lines.append("")
    lines.append(f"overall: {'PASS' if report.ok else 'FAIL'}")
    return "\n".join(lines) + "\n"
