"""Conformance tooling: runtime invariants and differential validation.

The repo has two independent execution paths for the same protocols —
the lockstep GIRAF runner (:mod:`repro.giraf`) and the event-driven
round-synchronization stack (:mod:`repro.sim` + :mod:`repro.sync`) —
plus the closed-form analysis of equations (1)-(10).  This package is
the correctness tooling that cross-checks them:

- :mod:`repro.check.invariants` — pluggable runtime checkers
  (Agreement, Validity, Integrity, leader stability after GSR, and the
  Theorem 10 decision bound for Algorithm 2), attachable as observers
  to both :class:`~repro.giraf.runner.LockstepRunner` and
  :class:`~repro.sync.round_sync.SyncRun`;
- :mod:`repro.check.differential` — drive one (network profile,
  :class:`~repro.faults.plan.FaultPlan`, seed) scenario through both
  stacks and diff the observables within stated tolerances, and
  cross-check the Monte-Carlo estimators against the closed forms;
- :mod:`repro.check.mutation` — deliberately broken algorithm variants
  proving the checkers can fail (a harness that cannot fire is no
  harness at all).
"""

from repro.check.invariants import (
    Agreement,
    Integrity,
    Invariant,
    InvariantSuite,
    LeaderStability,
    RunView,
    Validity,
    Violation,
    WlmDecisionBound,
    default_suite,
)
from repro.check.differential import (
    ConformanceReport,
    DiffRow,
    DifferentialResult,
    batched_differential_run,
    canonical_adversary_plan,
    canonical_diff_plan,
    conformance_report,
    differential_run,
    granular_wan_profile,
    montecarlo_vs_equations,
    run_conformance,
    uniform_wan_profile,
)
from repro.check.mutation import BrokenAgreementWlm, agreement_violation_run

__all__ = [
    "Agreement",
    "Integrity",
    "Invariant",
    "InvariantSuite",
    "LeaderStability",
    "RunView",
    "Validity",
    "Violation",
    "WlmDecisionBound",
    "default_suite",
    "ConformanceReport",
    "DiffRow",
    "DifferentialResult",
    "batched_differential_run",
    "canonical_adversary_plan",
    "canonical_diff_plan",
    "conformance_report",
    "differential_run",
    "granular_wan_profile",
    "montecarlo_vs_equations",
    "run_conformance",
    "uniform_wan_profile",
    "BrokenAgreementWlm",
    "agreement_violation_run",
]
