"""Runtime invariant checkers for both execution stacks.

An :class:`Invariant` is an observer: the runners feed it proposals,
oracle outputs and decisions *as they happen*, and at the end of a run
it inspects the normalized :class:`RunView`.  Violations accumulate on
the checker (and, through an :class:`InvariantSuite`, increment the
``check.violations`` counter of a :class:`repro.obs` registry) instead
of raising — a conformance run reports every broken property of a
scenario, not just the first.

The checkers cover the paper's guarantees:

- :class:`Agreement` — uniform agreement: no two processes ever decide
  different values (Theorem 10, safety part);
- :class:`Validity` — every decided value was some process's proposal;
- :class:`Integrity` — a process decides at most once: its reported
  decision never changes between rounds;
- :class:`LeaderStability` — from GSR on, all Ω queries of a round
  return the same leader (the eventual-leader-election property the
  leader-based models assume);
- :class:`WlmDecisionBound` — Theorem 10's liveness bound for
  Algorithm 2: global decision within 5 rounds of GSR, within 4 when
  the oracle already holds one round before GSR.

Both runners accept ``observers`` (any object implementing a subset of
the hooks below); :class:`InvariantSuite` bundles checkers into one such
observer and aggregates their findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

from repro.obs.registry import MetricsRegistry, registry_or_null

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.giraf.runner import RunResult
    from repro.sync.round_sync import SyncRunResult


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to reproduce it."""

    invariant: str
    message: str
    round_number: Optional[int] = None
    pid: Optional[int] = None

    def __str__(self) -> str:
        where = []
        if self.round_number is not None:
            where.append(f"round {self.round_number}")
        if self.pid is not None:
            where.append(f"pid {self.pid}")
        suffix = f" ({', '.join(where)})" if where else ""
        return f"[{self.invariant}] {self.message}{suffix}"


@dataclass
class RunView:
    """The end-of-run observations every checker can rely on, normalized
    so one ``finish`` implementation serves both execution stacks."""

    n: int
    correct: frozenset[int]
    proposals: dict[int, Any]
    decisions: dict[int, Any]
    decision_rounds: dict[int, int]
    rounds_executed: int

    @classmethod
    def from_lockstep(cls, result: "RunResult") -> "RunView":
        """Normalize a :class:`~repro.giraf.runner.RunResult`."""
        return cls(
            n=result.n,
            correct=frozenset(result.correct),
            proposals=dict(result.proposals),
            decisions=dict(result.decisions),
            decision_rounds=dict(result.decision_rounds),
            rounds_executed=result.rounds_executed,
        )

    @classmethod
    def from_sync(cls, result: "SyncRunResult") -> "RunView":
        """Normalize a :class:`~repro.sync.round_sync.SyncRunResult`."""
        return cls(
            n=result.n,
            correct=frozenset(result.correct),
            proposals=dict(result.proposals),
            decisions=dict(result.decisions),
            decision_rounds=dict(result.decision_rounds),
            rounds_executed=len(result.matrices),
        )


class Invariant:
    """Base checker: override the hooks you need; report via :meth:`violate`.

    Hooks are best-effort streams — a checker must tolerate seeing the
    same decision many times (the runners re-report latched decisions
    every round, which is exactly what lets :class:`Integrity` notice a
    value changing after the fact).
    """

    name = "invariant"

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        self._sink: Optional[Callable[[Violation], None]] = None

    def violate(
        self,
        message: str,
        round_number: Optional[int] = None,
        pid: Optional[int] = None,
    ) -> None:
        violation = Violation(self.name, message, round_number, pid)
        self.violations.append(violation)
        if self._sink is not None:
            self._sink(violation)

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------
    # Observer hooks (no-ops by default).
    # ------------------------------------------------------------------
    def on_proposal(self, pid: int, value: Any) -> None:
        """Process ``pid`` proposed ``value``."""

    def on_oracle(self, pid: int, round_number: int, output: Any) -> None:
        """Process ``pid``'s end-of-round oracle query returned ``output``."""

    def on_decision(self, pid: int, round_number: int, value: Any) -> None:
        """Process ``pid`` reports decision ``value`` at ``round_number``
        (re-reported every round while the decision stays latched)."""

    def on_finish(self, view: RunView) -> None:
        """The run ended; inspect the normalized observations."""


class Agreement(Invariant):
    """Uniform agreement: no two decided values ever differ — including
    decisions by processes that later crash."""

    name = "agreement"

    def __init__(self) -> None:
        super().__init__()
        self._first: Optional[tuple[int, Any]] = None
        self._flagged: set[int] = set()

    def on_decision(self, pid: int, round_number: int, value: Any) -> None:
        if self._first is None:
            self._first = (pid, value)
            return
        first_pid, first_value = self._first
        if value != first_value and pid not in self._flagged:
            self._flagged.add(pid)
            self.violate(
                f"pid {pid} decided {value!r} but pid {first_pid} decided "
                f"{first_value!r}",
                round_number=round_number,
                pid=pid,
            )

    def on_finish(self, view: RunView) -> None:
        # Adapter-only runs (no live hooks): check the final decision map.
        if self._first is None:
            values = list(view.decisions.items())
            for (pid_a, val_a), (pid_b, val_b) in zip(values, values[1:]):
                if val_a != val_b:
                    self.violate(
                        f"pid {pid_b} decided {val_b!r} but pid {pid_a} "
                        f"decided {val_a!r}",
                        pid=pid_b,
                    )


class Validity(Invariant):
    """Every decided value was some process's proposal."""

    name = "validity"

    def __init__(self) -> None:
        super().__init__()
        self._proposals: set[Any] = set()
        self._flagged: set[int] = set()

    def on_proposal(self, pid: int, value: Any) -> None:
        self._proposals.add(value)

    def on_decision(self, pid: int, round_number: int, value: Any) -> None:
        if self._proposals and value not in self._proposals and pid not in self._flagged:
            self._flagged.add(pid)
            self.violate(
                f"pid {pid} decided {value!r}, which nobody proposed",
                round_number=round_number,
                pid=pid,
            )

    def on_finish(self, view: RunView) -> None:
        proposed = set(view.proposals.values()) | self._proposals
        if not proposed:
            return
        for pid, value in view.decisions.items():
            if value not in proposed and pid not in self._flagged:
                self._flagged.add(pid)
                self.violate(
                    f"pid {pid} decided {value!r}, which nobody proposed",
                    pid=pid,
                )


class Integrity(Invariant):
    """A process decides at most once: the value it reports never changes."""

    name = "integrity"

    def __init__(self) -> None:
        super().__init__()
        self._decided: dict[int, Any] = {}
        self._flagged: set[int] = set()

    def on_decision(self, pid: int, round_number: int, value: Any) -> None:
        if pid not in self._decided:
            self._decided[pid] = value
        elif self._decided[pid] != value and pid not in self._flagged:
            self._flagged.add(pid)
            self.violate(
                f"pid {pid} changed its decision from "
                f"{self._decided[pid]!r} to {value!r}",
                round_number=round_number,
                pid=pid,
            )


class LeaderStability(Invariant):
    """From round ``gsr`` on, all Ω queries of a round agree on the leader
    (and match ``expected_leader`` when one is designated)."""

    name = "leader-stability"

    def __init__(self, gsr: int, expected_leader: Optional[int] = None) -> None:
        super().__init__()
        if gsr < 0:
            raise ValueError("gsr must be non-negative")
        self.gsr = gsr
        self.expected_leader = expected_leader
        self._round_leaders: dict[int, Any] = {}

    def on_oracle(self, pid: int, round_number: int, output: Any) -> None:
        if round_number < self.gsr or output is None:
            return
        expected = self.expected_leader
        if expected is not None and output != expected:
            self.violate(
                f"pid {pid} saw leader {output!r}, expected {expected!r}",
                round_number=round_number,
                pid=pid,
            )
            return
        seen = self._round_leaders.setdefault(round_number, output)
        if output != seen:
            self.violate(
                f"pid {pid} saw leader {output!r} while another process "
                f"saw {seen!r} in the same round",
                round_number=round_number,
                pid=pid,
            )


class WlmDecisionBound(Invariant):
    """Theorem 10's liveness bound for Algorithm 2 over ◊WLM.

    With the model holding from ``gsr``, every correct process decides by
    round ``gsr + 4`` (global decision within 5 rounds of GSR, GSR
    included); when the oracle's eventual property already holds from
    round ``gsr - 1`` (``leader_stable_early``), by ``gsr + 3``.
    """

    name = "wlm-decision-bound"

    def __init__(self, gsr: int, leader_stable_early: bool = False) -> None:
        super().__init__()
        if gsr < 1:
            raise ValueError("gsr must be at least 1 (rounds are 1-based)")
        self.gsr = gsr
        self.leader_stable_early = leader_stable_early

    @property
    def deadline(self) -> int:
        return self.gsr + (3 if self.leader_stable_early else 4)

    def on_finish(self, view: RunView) -> None:
        for pid in sorted(view.correct):
            decided_round = view.decision_rounds.get(pid)
            if decided_round is None:
                if view.rounds_executed < self.deadline:
                    # A run that stopped early (e.g. on global decision of
                    # the others) with this pid undecided cannot certify
                    # the bound either way — flag it rather than pass it.
                    self.violate(
                        f"run ended at round {view.rounds_executed} with "
                        f"pid {pid} undecided, before the deadline "
                        f"{self.deadline} — bound not checkable",
                        pid=pid,
                    )
                else:
                    self.violate(
                        f"correct pid {pid} never decided (deadline was "
                        f"round {self.deadline}, GSR {self.gsr})",
                        pid=pid,
                    )
            elif decided_round > self.deadline:
                self.violate(
                    f"pid {pid} decided at round {decided_round}, after the "
                    f"Theorem 10 deadline GSR+"
                    f"{3 if self.leader_stable_early else 4} = {self.deadline}",
                    round_number=decided_round,
                    pid=pid,
                )


class InvariantSuite:
    """A bundle of checkers acting as one runner observer.

    Violations from any member are mirrored into the ``check.violations``
    counter (labelled by invariant) of the given :class:`repro.obs`
    registry, so sweeps and profiled runs surface broken invariants in
    their telemetry without any extra plumbing.
    """

    def __init__(
        self,
        invariants: Iterable[Invariant],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.invariants: list[Invariant] = list(invariants)
        self._metrics = registry_or_null(metrics)
        for invariant in self.invariants:
            invariant._sink = self._record

    def _record(self, violation: Violation) -> None:
        self._metrics.counter(
            "check.violations", invariant=violation.invariant
        ).inc()

    # ------------------------------------------------------------------
    # Observer hooks (fanned out to every member).
    # ------------------------------------------------------------------
    def on_proposal(self, pid: int, value: Any) -> None:
        for invariant in self.invariants:
            invariant.on_proposal(pid, value)

    def on_oracle(self, pid: int, round_number: int, output: Any) -> None:
        for invariant in self.invariants:
            invariant.on_oracle(pid, round_number, output)

    def on_decision(self, pid: int, round_number: int, value: Any) -> None:
        for invariant in self.invariants:
            invariant.on_decision(pid, round_number, value)

    def finish(self, view: RunView) -> list[Violation]:
        """Run every member's end-of-run check; returns all violations."""
        for invariant in self.invariants:
            invariant.on_finish(view)
        return self.violations

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------
    @property
    def violations(self) -> list[Violation]:
        return [v for inv in self.invariants for v in inv.violations]

    @property
    def ok(self) -> bool:
        return not self.violations


def default_suite(
    metrics: Optional[MetricsRegistry] = None,
    extra: Sequence[Invariant] = (),
) -> InvariantSuite:
    """The safety checkers every consensus run should carry
    (agreement, validity, integrity), plus any scenario-specific extras
    (e.g. :class:`LeaderStability` or :class:`WlmDecisionBound`)."""
    return InvariantSuite(
        [Agreement(), Validity(), Integrity(), *extra], metrics=metrics
    )
