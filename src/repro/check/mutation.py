"""Deliberately broken algorithms: proof the checkers can fire.

A conformance harness that has never flagged anything is
indistinguishable from one that cannot.  This module seeds a concrete
bug — Algorithm 2 with the ``majApproved`` safeguard stripped (the exact
mechanism Lemma 3 relies on) — together with the 3-process schedule on
which it provably violates agreement, so benchmarks and tests can assert
that the :mod:`repro.check.invariants` checkers really detect it.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.consensus.base import ConsensusMessage, MsgType, round_maximum
from repro.core.wlm import WlmConsensus
from repro.giraf.kernel import Inbox, RoundOutput
from repro.giraf.oracle import ScriptedOracle
from repro.giraf.runner import LockstepRunner, RunResult
from repro.giraf.schedule import MatrixSchedule
from repro.models.matrix import empty_matrix


class BrokenAgreementWlm(WlmConsensus):
    """Algorithm 2 with ``majApproved`` stripped from commit and decide-3.

    Without the safeguard a process commits on *any* trusted leader's
    message and decides on any majority of COMMITs — which lets two
    leaders' camps decide different values (the scenario of
    :func:`agreement_violation_run`).
    """

    def compute(
        self, round_number: int, inbox: Inbox, oracle_output: Any
    ) -> RoundOutput:
        leader = int(oracle_output)
        if self._decision is None:
            messages: dict[int, ConsensusMessage] = dict(inbox.round(round_number))
            self.prev_leader = self.new_leader
            self.new_leader = leader
            self.max_ts, max_est = round_maximum(messages)
            self.maj_approved = (
                sum(1 for m in messages.values() if m.leader == self.pid)
                > self.n // 2
            )
            decide_msg = self._first_decide(messages)
            commit_count = sum(
                1 for m in messages.values() if m.msg_type == MsgType.COMMIT
            )
            own = messages.get(self.pid)
            leader_msg = messages.get(self.prev_leader)
            if decide_msg is not None:
                self.est = decide_msg.est
                self._decide(self.est, round_number)
                self.msg_type = MsgType.DECIDE
            elif (
                commit_count > self.n // 2
                and own is not None
                and own.msg_type == MsgType.COMMIT
                # MUTATION: decide-3 (own majApproved) removed.
            ):
                self._decide(self.est, round_number)
                self.msg_type = MsgType.DECIDE
            elif leader_msg is not None:
                # MUTATION: commit without the leader's majApproved.
                self.est = leader_msg.est
                self.ts = round_number
                self.msg_type = MsgType.COMMIT
            else:
                self.ts = self.max_ts
                self.est = max_est
                self.msg_type = MsgType.PREPARE
        return RoundOutput(self._message(), self._destinations(leader))


def agreement_violation_run(
    observers: Sequence[Any] = (),
    algorithm: Optional[type] = None,
) -> RunResult:
    """Run the adversarial 3-process world that splits the mutant.

    p0 trusts itself; p1 and p2 trust p2.  Round 1 delivers each process
    only its trusted leader's message, so the mutant commits in two camps
    ("A" at p0; "C" at p1/p2); round 2 hands each camp a majority of
    COMMITs and both decide — agreement violated.  ``observers`` (e.g. an
    :class:`~repro.check.invariants.InvariantSuite`) watch it happen.

    ``algorithm`` defaults to :class:`BrokenAgreementWlm`; pass
    :class:`~repro.core.wlm.WlmConsensus` to confirm the real Algorithm 2
    survives the same schedule untouched.
    """
    if algorithm is None:
        algorithm = BrokenAgreementWlm
    n = 3
    round1 = empty_matrix(n)
    round1[1, 2] = True  # p2 -> p1
    round2 = empty_matrix(n)
    round2[0, 2] = True  # p2 -> p0
    round2[2, 1] = True  # p1 -> p2
    schedule = MatrixSchedule([round1, round2, empty_matrix(n)])
    oracle = ScriptedOracle([[0, 2, 2]])
    proposals = ["A", "B-from-p1", "C"]
    runner = LockstepRunner(
        n,
        lambda pid: algorithm(pid, n, proposals[pid]),
        oracle,
        schedule,
        observers=observers,
    )
    return runner.run(max_rounds=4, stop_on_global_decision=False)
